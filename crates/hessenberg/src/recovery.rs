//! Error localization and correction (paper §IV-F).
//!
//! After the reversal has restored a checksum-consistent state, fresh row
//! and column sums are recomputed and compared against the stored
//! checksums (`A'r_chk` vs `Ar_chk`, `A'c_chk` vs `Ac_chk`). A corrupted
//! element `(i, j)` with deviation `ε` shows up as `+ε` in exactly row
//! deficit `i` and column deficit `j`; the element is corrected by
//! subtracting the deficit — equivalently, by the paper's
//! `A(i,j) = Ar_chk(i) − Σ_{k≠j} A(i,k)` formula.
//!
//! Multiple simultaneous errors are resolvable as long as their positions
//! do not form a rectangle (paper §I): the solver below peels unique
//! row/column deficit matches; a fully ambiguous configuration (equal
//! deficits forming a rectangle) is reported as unresolved.

use crate::encode::ExtMatrix;

/// One located error: position and signed deviation of the stored value
/// from the checksum-consistent value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocatedError {
    /// Row of the corrupted element.
    pub row: usize,
    /// Column of the corrupted element.
    pub col: usize,
    /// `stored − correct`.
    pub delta: f64,
}

/// Outcome of localization.
#[derive(Clone, Debug)]
pub struct LocateOutcome {
    /// The located errors.
    pub errors: Vec<LocatedError>,
    /// `false` when the deficit pattern was ambiguous (rectangle case) or
    /// inconsistent; callers should fall back to a full re-execution.
    pub resolved: bool,
}

/// Recomputes checksums of the restored state and matches deficits.
///
/// `frontier` is the number of fully reduced columns (the Hessenberg mask
/// boundary); `tol` the deficit significance threshold (same scale as the
/// detection threshold).
#[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must count as exceeded
pub fn locate_errors(ax: &ExtMatrix, frontier: usize, tol: f64) -> LocateOutcome {
    let n = ax.n();
    let row_sums = ax.math_row_sums(frontier);
    let col_sums = ax.math_col_sums(frontier);
    let mut row_def: Vec<(usize, f64)> = vec![];
    let mut col_def: Vec<(usize, f64)> = vec![];
    for i in 0..n {
        let d = row_sums[i] - ax.chk_col()[i];
        if !(d.abs() <= tol) {
            row_def.push((i, d));
        }
    }
    for j in 0..n {
        let d = col_sums[j] - ax.chk_row(j);
        if !(d.abs() <= tol) {
            col_def.push((j, d));
        }
    }

    match (row_def.len(), col_def.len()) {
        (0, 0) => LocateOutcome {
            errors: vec![],
            resolved: true,
        },
        // All errors share one row: columns identify each error.
        (1, _) => {
            let (r, rd) = row_def[0];
            let errors: Vec<LocatedError> = col_def
                .iter()
                .map(|&(j, d)| LocatedError {
                    row: r,
                    col: j,
                    delta: d,
                })
                .collect();
            let sum: f64 = errors.iter().map(|e| e.delta).sum();
            let resolved = !col_def.is_empty() && (sum - rd).abs() <= tol.max(1e-8 * rd.abs());
            LocateOutcome { errors, resolved }
        }
        // All errors share one column: rows identify each error.
        (_, 1) => {
            let (c, cd) = col_def[0];
            let errors: Vec<LocatedError> = row_def
                .iter()
                .map(|&(i, d)| LocatedError {
                    row: i,
                    col: c,
                    delta: d,
                })
                .collect();
            let sum: f64 = errors.iter().map(|e| e.delta).sum();
            let resolved = !row_def.is_empty() && (sum - cd).abs() <= tol.max(1e-8 * cd.abs());
            LocateOutcome { errors, resolved }
        }
        // A checksum-only corruption (one direction deficient, the other
        // clean) cannot be attributed to a data element; callers refresh
        // the checksum instead.
        (0, _) | (_, 0) => LocateOutcome {
            errors: vec![],
            resolved: false,
        },
        // General scattered errors: peel unique magnitude matches.
        _ => peel_matches(row_def, col_def, tol),
    }
}

fn peel_matches(
    mut rows: Vec<(usize, f64)>,
    mut cols: Vec<(usize, f64)>,
    tol: f64,
) -> LocateOutcome {
    let mut errors = vec![];
    let match_tol = |a: f64, b: f64| (a - b).abs() <= tol.max(1e-9 * a.abs().max(b.abs()));
    loop {
        if rows.is_empty() && cols.is_empty() {
            return LocateOutcome {
                errors,
                resolved: true,
            };
        }
        if rows.is_empty() != cols.is_empty() {
            // Leftover deficit on one side only: inconsistent.
            return LocateOutcome {
                errors,
                resolved: false,
            };
        }
        // Find a row whose deficit matches exactly one column deficit.
        let mut progress = false;
        'outer: for ri in 0..rows.len() {
            let (r, rd) = rows[ri];
            let candidates: Vec<usize> = (0..cols.len())
                .filter(|&ci| match_tol(rd, cols[ci].1))
                .collect();
            if candidates.len() == 1 {
                let ci = candidates[0];
                let (c, _cd) = cols[ci];
                errors.push(LocatedError {
                    row: r,
                    col: c,
                    delta: rd,
                });
                rows.remove(ri);
                cols.remove(ci);
                progress = true;
                break 'outer;
            }
        }
        if !progress {
            // Every remaining row deficit matches 0 or ≥2 column deficits:
            // the rectangle ambiguity the paper excludes.
            return LocateOutcome {
                errors,
                resolved: false,
            };
        }
    }
}

/// Applies corrections in place: `A(i,j) −= delta` (paper §IV-F's checksum
/// subtraction, expressed through the deficit).
pub fn correct_errors(ax: &mut ExtMatrix, errors: &[LocatedError]) {
    for e in errors {
        let old = ax.raw()[(e.row, e.col)];
        ax.raw_mut()[(e.row, e.col)] = old - e.delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consistent(n: usize, seed: u64) -> ExtMatrix {
        ExtMatrix::encode(&ft_matrix::random::uniform(n, n, seed))
    }

    #[test]
    fn clean_matrix_locates_nothing() {
        let ax = consistent(8, 1);
        let out = locate_errors(&ax, 0, 1e-10);
        assert!(out.resolved);
        assert!(out.errors.is_empty());
    }

    #[test]
    fn single_error_located_and_corrected() {
        let mut ax = consistent(8, 2);
        let truth = ax.raw()[(3, 5)];
        ax.raw_mut()[(3, 5)] += 0.25;
        let out = locate_errors(&ax, 0, 1e-10);
        assert!(out.resolved);
        assert_eq!(out.errors.len(), 1);
        let e = out.errors[0];
        assert_eq!((e.row, e.col), (3, 5));
        assert!((e.delta - 0.25).abs() < 1e-12);
        correct_errors(&mut ax, &out.errors);
        assert!((ax.raw()[(3, 5)] - truth).abs() < 1e-12);
        assert!(locate_errors(&ax, 0, 1e-10).errors.is_empty());
    }

    #[test]
    fn two_errors_same_row() {
        let mut ax = consistent(8, 3);
        ax.raw_mut()[(2, 1)] += 0.5;
        ax.raw_mut()[(2, 6)] -= 0.75;
        let out = locate_errors(&ax, 0, 1e-10);
        assert!(out.resolved, "{out:?}");
        assert_eq!(out.errors.len(), 2);
        correct_errors(&mut ax, &out.errors);
        assert!(locate_errors(&ax, 0, 1e-10).errors.is_empty());
    }

    #[test]
    fn two_errors_same_column() {
        let mut ax = consistent(8, 4);
        ax.raw_mut()[(1, 4)] += 0.5;
        ax.raw_mut()[(6, 4)] += 0.25;
        let out = locate_errors(&ax, 0, 1e-10);
        assert!(out.resolved);
        assert_eq!(out.errors.len(), 2);
        correct_errors(&mut ax, &out.errors);
        assert!(locate_errors(&ax, 0, 1e-10).errors.is_empty());
    }

    #[test]
    fn three_scattered_errors_non_rectangle() {
        let mut ax = consistent(10, 5);
        // Distinct magnitudes at distinct rows and columns.
        ax.raw_mut()[(1, 2)] += 0.5;
        ax.raw_mut()[(4, 7)] += 0.875;
        ax.raw_mut()[(8, 3)] -= 0.3125;
        let out = locate_errors(&ax, 0, 1e-10);
        assert!(out.resolved, "{out:?}");
        assert_eq!(out.errors.len(), 3);
        correct_errors(&mut ax, &out.errors);
        assert!(locate_errors(&ax, 0, 1e-10).errors.is_empty());
    }

    #[test]
    fn rectangle_with_equal_magnitudes_is_unresolved() {
        let mut ax = consistent(8, 6);
        // (2,3), (2,5), (6,3), (6,5) all +0.5: a rectangle — ambiguous.
        for &(i, j) in &[(2usize, 3usize), (2, 5), (6, 3), (6, 5)] {
            let old = ax.raw()[(i, j)];
            ax.raw_mut()[(i, j)] = old + 0.5;
        }
        let out = locate_errors(&ax, 0, 1e-10);
        // Row deficits: rows 2 and 6 each 1.0; column deficits: 3 and 5
        // each 1.0. Every row matches both columns: unresolvable.
        assert!(!out.resolved);
    }

    #[test]
    fn respects_frontier_mask() {
        // An error in Householder storage (below sub-diagonal, reduced
        // column) is invisible to the mathematical checksums — by design,
        // Q storage is protected separately.
        let a = ft_matrix::random::uniform(8, 8, 7);
        let mut ax = ExtMatrix::encode(&a);
        // Make the checksums those of the *masked* view with frontier 3.
        let rs = ax.math_row_sums(3);
        let cs = ax.math_col_sums(3);
        let n = ax.n();
        for i in 0..n {
            ax.raw_mut()[(i, n)] = rs[i];
        }
        for j in 0..n {
            ax.raw_mut()[(n, j)] = cs[j];
        }
        let clean = locate_errors(&ax, 3, 1e-10);
        assert!(clean.resolved && clean.errors.is_empty());
        // Corrupt masked storage: still clean mathematically.
        ax.raw_mut()[(7, 0)] += 123.0;
        let out = locate_errors(&ax, 3, 1e-10);
        assert!(out.errors.is_empty());
        // Corrupt an unmasked element: located.
        ax.raw_mut()[(1, 0)] += 0.5;
        let out = locate_errors(&ax, 3, 1e-10);
        assert_eq!(out.errors.len(), 1);
        assert_eq!((out.errors[0].row, out.errors[0].col), (1, 0));
    }
}
