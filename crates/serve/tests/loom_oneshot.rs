//! Loom models of the oneshot rendezvous: set/take/wait/drop races. Run
//! with `RUSTFLAGS="--cfg loom" cargo test -p ft-serve --test loom_oneshot`.

#![cfg(loom)]

use ft_serve::oneshot::OneShot;
use loom::sync::Arc;
use std::time::Duration;

#[test]
fn set_and_take_rendezvous() {
    loom::model(|| {
        let c = Arc::new(OneShot::new());
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || c2.take_blocking());
        c.set(7);
        assert_eq!(t.join().unwrap(), 7, "taker must observe the set value");
    });
}

#[test]
fn timed_wait_races_with_set() {
    loom::model(|| {
        let c = Arc::new(OneShot::new());
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || c2.set(1));
        let ready = c.wait_until_set(Duration::from_millis(1));
        if ready {
            assert!(c.is_set(), "wait_until_set(true) implies a waiting value");
        }
        t.join().unwrap();
        // Whichever branch the wait took, the set has landed by now.
        assert_eq!(c.take_blocking(), 1);
        assert!(!c.is_set(), "taken cell must not report a value");
    });
}

#[test]
fn set_races_with_observation_and_drop() {
    loom::model(|| {
        let c = Arc::new(OneShot::new());
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || c2.set(String::from("payload")));
        let _ = c.is_set();
        t.join().unwrap();
        // Dropped with the value unread: the String must be released
        // exactly once (any double-free would abort the model).
        drop(c);
    });
}
