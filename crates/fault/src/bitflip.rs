//! IEEE-754 bit manipulation: the physical corruption mechanism.

/// Flips bit `bit` (0 = least significant mantissa bit, 63 = sign) of `v`.
///
/// Flipping high exponent bits can produce huge values, infinities or
/// NaNs — all of which a detection scheme must survive; the FT driver's
/// comparisons are written NaN-safe for exactly this reason.
pub fn flip_bit(v: f64, bit: u8) -> f64 {
    assert!(bit < 64, "bit index {bit} out of range");
    f64::from_bits(v.to_bits() ^ (1u64 << bit))
}

/// Flips one of the 52 mantissa bits: perturbs the value while keeping its
/// magnitude (and finiteness) — the "quiet" corruption that is hardest to
/// notice without checksums.
pub fn flip_mantissa_bit(v: f64, bit: u8) -> f64 {
    assert!(bit < 52, "mantissa bit index {bit} out of range");
    flip_bit(v, bit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        let v = std::f64::consts::PI;
        for bit in [0u8, 17, 51, 52, 62, 63] {
            let f = flip_bit(v, bit);
            assert_ne!(f.to_bits(), v.to_bits());
            assert_eq!(flip_bit(f, bit).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sign_bit_negates() {
        assert_eq!(flip_bit(2.5, 63), -2.5);
    }

    #[test]
    fn mantissa_flip_keeps_magnitude_order() {
        let v = 1.75e10;
        let f = flip_mantissa_bit(v, 30);
        assert!(f.is_finite());
        // Same binade: exponent unchanged.
        assert_eq!(f.abs().log2().floor(), v.abs().log2().floor());
    }

    #[test]
    fn exponent_flip_can_produce_non_finite() {
        // Flipping the top exponent bit of a normal number with exponent
        // pattern 0b0111... yields 0b1111... = Inf/NaN range.
        let v = 1.5f64; // exponent bits 01111111111
        let f = flip_bit(v, 62);
        assert!(!f.is_finite() || f.abs() > 1e300);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_64_panics() {
        flip_bit(1.0, 64);
    }
}
