//! Criterion bench: GEMM kernel variants (the device workhorse of the
//! trailing-matrix updates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_blas::{gemm_with_algo, GemmAlgo, Trans};
use ft_matrix::Matrix;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = ft_matrix::random::uniform(n, n, 1);
        let b = ft_matrix::random::uniform(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for algo in [GemmAlgo::Reference, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            group.bench_with_input(BenchmarkId::new(format!("{algo:?}"), n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm_with_algo(
                        algo,
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut cmat.as_view_mut(),
                    );
                    std::hint::black_box(cmat.as_slice()[0]);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
