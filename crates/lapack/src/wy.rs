//! Compact WY representation of products of Householder reflectors
//! (LAPACK `DLARFT` / `DLARFB`, forward columnwise storage).
//!
//! `H₀·H₁⋯H_{nb−1} = I − V·T·Vᵀ` where `V` is `m × nb` with `v_j` in column
//! `j`, and `T` is `nb × nb` upper triangular (the paper's Eq. for `U₁` in
//! §III-B, the Schreiber–Van Loan representation).
//!
//! Unlike LAPACK we store `V` **explicitly**: column `j` contains its
//! leading zeros and its unit element, so the block kernels are plain GEMMs
//! with no implicit-triangle fix-ups. This costs one panel of extra memory
//! (the paper's storage analysis already budgets "a panel worth of work
//! space") and keeps the fault-tolerant variants honest — the checksummed
//! updates in `ft-hessenberg` extend exactly these kernels.

use ft_blas::{gemm, trmm, Diag, Side, Trans, Uplo};
use ft_matrix::{MatView, MatViewMut, Matrix};

/// Builds the upper-triangular factor `T` from the reflector matrix `V`
/// (explicit storage) and the scales `tau` (LAPACK `DLARFT`, direction
/// "Forward", storage "Columnwise").
pub fn larft(v: &MatView<'_>, tau: &[f64]) -> Matrix {
    let nb = v.cols();
    assert_eq!(
        tau.len(),
        nb,
        "larft: tau length {} != V cols {nb}",
        tau.len()
    );
    let mut t = Matrix::zeros(nb, nb);
    for j in 0..nb {
        if tau[j] == 0.0 {
            // H_j = I: column j of T is zero (including the diagonal).
            continue;
        }
        // T(0..j, j) = −τ_j · T(0..j, 0..j) · V(:, 0..j)ᵀ · v_j
        if j > 0 {
            let vj = v.col(j);
            let mut w = vec![0.0; j];
            ft_blas::gemv(
                Trans::Yes,
                -tau[j],
                &v.subview(0, 0, v.rows(), j),
                vj,
                0.0,
                &mut w,
            );
            ft_blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit, &t.as_view(), &mut w);
            t.view_mut(0, j, j, 1).col_mut(0).copy_from_slice(&w);
        }
        t[(j, j)] = tau[j];
    }
    t
}

/// Applies a block reflector `H = I − V·T·Vᵀ` (or `Hᵀ`) to `C` in place
/// (LAPACK `DLARFB`, forward columnwise).
///
/// * `Side::Left`:  `C ← op(H)·C`, with `V.rows() == C.rows()`;
/// * `Side::Right`: `C ← C·op(H)`, with `V.rows() == C.cols()`;
/// * `trans` selects `H` (`Trans::No`) or `Hᵀ` (`Trans::Yes`); since
///   `Hᵀ = I − V·Tᵀ·Vᵀ`, this only changes which way `T` is applied.
pub fn larfb(side: Side, trans: Trans, v: &MatView<'_>, t: &MatView<'_>, c: &mut MatViewMut<'_>) {
    let nb = v.cols();
    if nb == 0 || c.is_empty() {
        return;
    }
    assert_eq!(t.rows(), nb, "larfb: T rows {} != nb {nb}", t.rows());
    assert_eq!(t.cols(), nb, "larfb: T cols {} != nb {nb}", t.cols());
    // `trans` selects whether T or Tᵀ is applied; pass it straight through.
    let t_op = trans;

    match side {
        Side::Left => {
            assert_eq!(
                v.rows(),
                c.rows(),
                "larfb(Left): V rows {} != C rows {}",
                v.rows(),
                c.rows()
            );
            // W = Vᵀ·C                 (nb × n)
            let mut w = Matrix::zeros(nb, c.cols());
            gemm(
                Trans::Yes,
                Trans::No,
                1.0,
                v,
                &c.as_view(),
                0.0,
                &mut w.as_view_mut(),
            );
            // W ← op(T)·W
            trmm(
                Side::Left,
                Uplo::Upper,
                t_op,
                Diag::NonUnit,
                1.0,
                t,
                &mut w.as_view_mut(),
            );
            // C ← C − V·W
            gemm(Trans::No, Trans::No, -1.0, v, &w.as_view(), 1.0, c);
        }
        Side::Right => {
            assert_eq!(
                v.rows(),
                c.cols(),
                "larfb(Right): V rows {} != C cols {}",
                v.rows(),
                c.cols()
            );
            // W = C·V                  (m × nb)
            let mut w = Matrix::zeros(c.rows(), nb);
            gemm(
                Trans::No,
                Trans::No,
                1.0,
                &c.as_view(),
                v,
                0.0,
                &mut w.as_view_mut(),
            );
            // W ← W·op(T)
            trmm(
                Side::Right,
                Uplo::Upper,
                t_op,
                Diag::NonUnit,
                1.0,
                t,
                &mut w.as_view_mut(),
            );
            // C ← C − W·Vᵀ
            gemm(Trans::No, Trans::Yes, -1.0, &w.as_view(), v, 1.0, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::larfg;
    use ft_matrix::{assert_matrix_eq, Matrix};

    /// Generates `nb` stacked reflectors over an m-vector space, returning
    /// (V explicit, tau) with v_j's unit at row j.
    fn random_reflectors(m: usize, nb: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let src = ft_matrix::random::uniform(m, nb, seed);
        let mut v = Matrix::zeros(m, nb);
        let mut tau = vec![0.0; nb];
        for j in 0..nb {
            let mut tail: Vec<f64> = (j + 1..m).map(|i| src[(i, j)]).collect();
            let r = larfg(src[(j, j)], &mut tail);
            tau[j] = r.tau;
            v[(j, j)] = 1.0;
            for (off, &val) in tail.iter().enumerate() {
                v[(j + 1 + off, j)] = val;
            }
        }
        (v, tau)
    }

    /// Dense product H₀·H₁⋯H_{nb−1}.
    fn dense_product(v: &Matrix, tau: &[f64]) -> Matrix {
        let m = v.rows();
        let mut q = Matrix::identity(m);
        for j in 0..v.cols() {
            let vj: Vec<f64> = v.col(j).to_vec();
            // q ← q · H_j  (accumulate in order: H₀·H₁⋯)
            let mut w = vec![0.0; m];
            ft_blas::gemv(Trans::No, 1.0, &q.as_view(), &vj, 0.0, &mut w);
            ft_blas::ger(-tau[j], &w, &vj, &mut q.as_view_mut());
        }
        q
    }

    #[test]
    fn larft_reproduces_product() {
        let (v, tau) = random_reflectors(7, 3, 5);
        let t = larft(&v.as_view(), &tau);
        assert!(t.is_upper_triangular_tol(0.0));

        // I − V·T·Vᵀ must equal H₀H₁H₂.
        let mut vt = Matrix::zeros(7, 3);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &v.as_view(),
            &t.as_view(),
            0.0,
            &mut vt.as_view_mut(),
        );
        let mut block = Matrix::identity(7);
        gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &vt.as_view(),
            &v.as_view(),
            1.0,
            &mut block.as_view_mut(),
        );

        let expect = dense_product(&v, &tau);
        assert_matrix_eq(&block, &expect, 1e-13, "compact WY");
    }

    #[test]
    fn larft_handles_tau_zero_columns() {
        let (v, mut tau) = random_reflectors(6, 3, 6);
        tau[1] = 0.0; // middle reflector is the identity
        let t = larft(&v.as_view(), &tau);
        let mut vt = Matrix::zeros(6, 3);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &v.as_view(),
            &t.as_view(),
            0.0,
            &mut vt.as_view_mut(),
        );
        let mut block = Matrix::identity(6);
        gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &vt.as_view(),
            &v.as_view(),
            1.0,
            &mut block.as_view_mut(),
        );
        let expect = dense_product(&v, &tau);
        assert_matrix_eq(&block, &expect, 1e-13, "compact WY with tau=0");
    }

    #[test]
    fn larfb_left_and_right_match_dense() {
        let (v, tau) = random_reflectors(6, 3, 7);
        let t = larft(&v.as_view(), &tau);
        let h = dense_product(&v, &tau);

        let c0 = ft_matrix::random::uniform(6, 4, 8);
        // Left, NoTrans: H·C
        let mut expect = Matrix::zeros(6, 4);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &h.as_view(),
            &c0.as_view(),
            0.0,
            &mut expect.as_view_mut(),
        );
        let mut c = c0.clone();
        larfb(
            Side::Left,
            Trans::No,
            &v.as_view(),
            &t.as_view(),
            &mut c.as_view_mut(),
        );
        assert_matrix_eq(&c, &expect, 1e-13, "larfb left no-trans");

        // Left, Trans: Hᵀ·C
        let mut expect = Matrix::zeros(6, 4);
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &h.as_view(),
            &c0.as_view(),
            0.0,
            &mut expect.as_view_mut(),
        );
        let mut c = c0.clone();
        larfb(
            Side::Left,
            Trans::Yes,
            &v.as_view(),
            &t.as_view(),
            &mut c.as_view_mut(),
        );
        assert_matrix_eq(&c, &expect, 1e-13, "larfb left trans");

        // Right, NoTrans: C·H (C is 4×6 now)
        let c0 = ft_matrix::random::uniform(4, 6, 9);
        let mut expect = Matrix::zeros(4, 6);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &c0.as_view(),
            &h.as_view(),
            0.0,
            &mut expect.as_view_mut(),
        );
        let mut c = c0.clone();
        larfb(
            Side::Right,
            Trans::No,
            &v.as_view(),
            &t.as_view(),
            &mut c.as_view_mut(),
        );
        assert_matrix_eq(&c, &expect, 1e-13, "larfb right no-trans");

        // Right, Trans: C·Hᵀ
        let mut expect = Matrix::zeros(4, 6);
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &c0.as_view(),
            &h.as_view(),
            0.0,
            &mut expect.as_view_mut(),
        );
        let mut c = c0.clone();
        larfb(
            Side::Right,
            Trans::Yes,
            &v.as_view(),
            &t.as_view(),
            &mut c.as_view_mut(),
        );
        assert_matrix_eq(&c, &expect, 1e-13, "larfb right trans");
    }

    #[test]
    fn larfb_roundtrip_identity() {
        // Hᵀ·(H·C) = C since H is orthogonal.
        let (v, tau) = random_reflectors(8, 4, 12);
        let t = larft(&v.as_view(), &tau);
        let c0 = ft_matrix::random::uniform(8, 5, 13);
        let mut c = c0.clone();
        larfb(
            Side::Left,
            Trans::No,
            &v.as_view(),
            &t.as_view(),
            &mut c.as_view_mut(),
        );
        larfb(
            Side::Left,
            Trans::Yes,
            &v.as_view(),
            &t.as_view(),
            &mut c.as_view_mut(),
        );
        assert_matrix_eq(&c, &c0, 1e-12, "H^T H C = C");
    }

    #[test]
    fn larfb_empty_block_is_noop() {
        let v = Matrix::zeros(4, 0);
        let t = Matrix::zeros(0, 0);
        let c0 = ft_matrix::random::uniform(4, 3, 14);
        let mut c = c0.clone();
        larfb(
            Side::Left,
            Trans::No,
            &v.as_view(),
            &t.as_view(),
            &mut c.as_view_mut(),
        );
        assert_eq!(c, c0);
    }
}
