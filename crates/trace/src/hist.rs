//! Mergeable HDR-style histograms with a bounded relative quantile error.
//!
//! The bucket layout is the classic exponential-with-linear-sub-buckets
//! scheme: values below `2^SUB_BITS` get one exact bucket each; every
//! larger value lands in one of `2^SUB_BITS` equal-width sub-buckets of
//! its binary order of magnitude. A reported quantile is the upper edge
//! of the bucket holding the rank-`⌈q·n⌉` sample, so it never
//! under-reports and over-reports by at most a factor `2^-SUB_BITS`
//! (≈ 3.1 % with the fixed `SUB_BITS = 5`) — the property the proptest
//! suite pins against exact sorted-sample quantiles.
//!
//! Two shapes share the layout:
//!
//! * [`Histogram`] — a named bank of relaxed `AtomicU64` buckets for
//!   concurrent recording (registered process-wide through
//!   [`crate::histogram`], or owned by a subsystem such as
//!   `ft-serve`'s per-lane latency accounting);
//! * [`HistSnapshot`] — a plain, cloneable point-in-time copy with the
//!   quantile and merge API. Merging is per-bucket addition, so it is
//!   associative and commutative: shard-local snapshots can be combined
//!   in any order (loadgen merges one per client thread).

use std::sync::atomic::AtomicU64;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

/// Number of linear sub-bucket bits per binary order of magnitude.
/// Quantiles over-report by at most `2^-SUB_BITS` relative.
pub const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32 sub-buckets per magnitude
/// Total bucket count: `SUB` exact low buckets plus `SUB` sub-buckets
/// for each exponent in `SUB_BITS..=63` (64 − `SUB_BITS` groups).
const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index holding value `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - u64::from(v.leading_zeros()); // v in [2^e, 2^(e+1))
        let sub = (v >> (e - u64::from(SUB_BITS))) - SUB; // 0..SUB
        (SUB + (e - u64::from(SUB_BITS)) * SUB + sub) as usize
    }
}

/// Largest value stored in bucket `idx` (the reported quantile value).
fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let group = (idx - SUB) / SUB; // exponent - SUB_BITS
        let sub = (idx - SUB) % SUB;
        let step = 1u64 << group;
        // `(step - 1)` first: the top bucket's edge is exactly
        // `u64::MAX`, so adding `step` before subtracting would overflow.
        ((SUB + sub) << group) + (step - 1)
    }
}

/// A named concurrent histogram: relaxed atomic buckets, snapshot on
/// read. Construction is `const` (the bucket bank is lazily allocated on
/// first record) so the registry can hand out `'static` references and
/// the `enabled`-off dummy costs nothing.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    counts: OnceLock<Box<[AtomicU64]>>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A new empty histogram. `const`, so subsystems can own `static`
    /// banks of them ([`crate::histogram`] is the registry route).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            counts: OnceLock::new(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    // ft-check: hot
    /// Records one observation (relaxed atomics; no-op with the
    /// `enabled` feature off).
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            let counts = self
                .counts
                .get_or_init(|| (0..BUCKETS).map(|_| AtomicU64::new(0)).collect());
            counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// A point-in-time copy (buckets are read relaxed; a snapshot taken
    /// concurrently with records is a valid histogram of *some* prefix
    /// of them).
    pub fn snapshot(&self) -> HistSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        let counts = match self.counts.get() {
            Some(c) => c.iter().map(|b| b.load(Relaxed)).collect(),
            None => Vec::new(),
        };
        HistSnapshot {
            counts,
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// A plain, mergeable histogram snapshot (same bucket layout as
/// [`Histogram`]). Also usable directly as a single-threaded recorder —
/// `ft-serve`'s load generator builds one per client and merges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts; empty until the first record (an empty vector
    /// and an all-zero vector are equivalent, and `merge` normalizes).
    counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistSnapshot {
        HistSnapshot::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        // Saturating: the mean degrades gracefully instead of wrapping
        // (and saturating add keeps merge associative/commutative).
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Adds `other`'s observations into `self` (per-bucket addition:
    /// associative and commutative, the shard-merge contract).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket holding the rank-`⌈q·n⌉` observation, clamped to the
    /// observed maximum. Never below the exact sorted-sample quantile
    /// and at most `2^-SUB_BITS` relative above it. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotonic() {
        // Every bucket's high edge maps back to its own index, and
        // consecutive values never skip backwards across buckets.
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_high(idx)), idx, "idx {idx}");
        }
        let mut last = 0;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index regressed at {v}");
            assert!(bucket_high(idx) >= v);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [0u64, 5, 31, 32, 100, 999, 12_345, 1 << 30, u64::MAX / 3] {
            let hi = bucket_high(bucket_index(v));
            assert!(hi >= v);
            assert!(
                hi - v <= v / (1 << SUB_BITS) + 1,
                "bucket edge {hi} too far above {v}"
            );
        }
    }

    #[test]
    fn quantiles_bracket_known_distribution() {
        let mut h = HistSnapshot::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((500..=516).contains(&p50), "p50 {p50}");
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.max, 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = HistSnapshot::new();
        let mut b = HistSnapshot::new();
        let mut all = HistSnapshot::new();
        for v in [3u64, 77, 1029, 55_555] {
            a.record(v);
            all.record(v);
        }
        for v in [4u64, 77, 90_001] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty snapshot is the identity.
        let before = a.clone();
        a.merge(&HistSnapshot::new());
        assert_eq!(a, before);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn atomic_histogram_snapshot_matches_plain() {
        static H: Histogram = Histogram::new("test.hist");
        let mut plain = HistSnapshot::new();
        for v in [1u64, 2, 3, 1000, 1_000_000] {
            H.record(v);
            plain.record(v);
        }
        assert_eq!(H.snapshot(), plain);
        assert_eq!(H.name(), "test.hist");
    }
}
