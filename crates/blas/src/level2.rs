//! Level-2 BLAS: matrix–vector operations on column-major views.
//!
//! `gemv` and `ger` — the kernels the `lahr2` panel factorization is
//! built from — run behind the same [`crate::backend`] gate as the
//! level-3 kernels, chunked over the persistent worker pool when the
//! element count clears [`crate::backend::PARALLEL_MIN_ELEMS`]. The
//! chunking partitions *output* elements (rows of `y` for `gemv`,
//! columns of `A` for `gemv^T`/`ger`) and keeps every element's
//! accumulation order exactly serial, so the threaded results are
//! bit-identical to the serial ones for any worker count.
//!
//! The `gemv`/`ger` inner loops additionally dispatch through the same
//! runtime ISA resolution as the level-3 microkernel (`FT_BLAS_SIMD`,
//! [`crate::with_simd_path`]): the ISA is captured once per entry point
//! and carried into the pool workers. The portable bodies accumulate
//! with a separate multiply and add (two roundings per element) and the
//! AVX2 bodies reproduce exactly that sequence lane-for-lane —
//! `_mm256_add_pd(_mm256_mul_pd(…))`, never a fused multiply-add — with
//! each output element's accumulation order unchanged, so every ISA
//! produces the same bits.

use crate::backend;
use crate::flops::{model, record};
use crate::level3::{resolve_isa, Isa};
use crate::types::{Diag, Trans, Uplo};
use ft_matrix::{MatView, MatViewMut};

/// General matrix–vector product:
/// `y ← α·op(A)·x + β·y` with `op(A) = A` or `Aᵀ`.
///
/// For `Trans::No`, `x` has length `A.cols()` and `y` length `A.rows()`;
/// for `Trans::Yes` the roles swap.
pub fn gemv(trans: Trans, alpha: f64, a: &MatView<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = (a.rows(), a.cols());
    match trans {
        Trans::No => {
            assert_eq!(x.len(), n, "gemv: x length {} != cols {n}", x.len());
            assert_eq!(y.len(), m, "gemv: y length {} != rows {m}", y.len());
        }
        Trans::Yes => {
            assert_eq!(x.len(), m, "gemv^T: x length {} != rows {m}", x.len());
            assert_eq!(y.len(), n, "gemv^T: y length {} != cols {n}", y.len());
        }
    }
    record(model::gemv(m, n));

    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    let workers = backend::fork_threads_mem(m * n);
    let isa = resolve_isa();
    match trans {
        // Column-oriented accumulation: y += (alpha * x[j]) * A(:,j).
        // Parallel split: contiguous row blocks of y, each sweeping all
        // columns of its row slice of A in the serial (ascending-j)
        // order — every y[i] accumulates exactly as in the serial loop.
        Trans::No => {
            backend::for_each_slice_chunk(y, workers, |i0, ychunk| {
                let ablock = a.subview(i0, 0, ychunk.len(), n);
                for j in 0..n {
                    let axj = alpha * x[j];
                    if axj != 0.0 {
                        axpy_col(isa, axj, ablock.col(j), ychunk);
                    }
                }
            });
        }
        // Dot-product per column: y[j] += alpha * A(:,j)ᵀ x. Parallel
        // split: contiguous ranges of output columns; each dot product
        // keeps its serial accumulation order (the AVX2 path runs four
        // columns at once, one dot per lane).
        Trans::Yes => {
            backend::for_each_slice_chunk(y, workers, |j0, ychunk| {
                dot_cols(isa, a, j0, x, alpha, ychunk);
            });
        }
    }
}

/// Rank-1 update: `A ← A + α·x·yᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut MatViewMut<'_>) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(x.len(), m, "ger: x length {} != rows {m}", x.len());
    assert_eq!(y.len(), n, "ger: y length {} != cols {n}", y.len());
    record(model::ger(m, n));
    if alpha == 0.0 {
        return;
    }
    // Columns of A are fully independent rank-1 column updates: partition
    // them over the pool; each column's update is elementwise serial.
    let workers = backend::fork_threads_mem(m * n);
    let isa = resolve_isa();
    backend::for_each_col_chunk(a.rb_mut(), workers, |j0, mut chunk| {
        for jj in 0..chunk.cols() {
            let ayj = alpha * y[j0 + jj];
            if ayj != 0.0 {
                axpy_col(isa, ayj, x, chunk.col_mut(jj));
            }
        }
    });
}

/// Shared scalar body of the column update `dst[i] += s * src[i]` — a
/// separate multiply and add (two roundings per element), which is the
/// contract every ISA below reproduces.
#[inline(always)]
fn axpy_col_scalar(s: f64, src: &[f64], dst: &mut [f64]) {
    for (di, &si) in dst.iter_mut().zip(src) {
        *di += s * si;
    }
}

/// AVX2 body of the column update. Uses `mul` then `add` (not `vfmadd`)
/// so each lane performs the same two roundings as the scalar body;
/// lanes map to distinct `dst` elements, so no accumulation order
/// changes — the result is bit-identical to [`axpy_col_scalar`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn axpy_col_avx2(s: f64, src: &[f64], dst: &mut [f64]) {
    use std::arch::x86_64::*;
    let len = dst.len().min(src.len());
    let sv = _mm256_set1_pd(s);
    let mut i = 0;
    while i + 4 <= len {
        // SAFETY: i + 4 <= len bounds both slices; loadu/storeu have no
        // alignment requirement and `dst` is uniquely borrowed.
        unsafe {
            let a = _mm256_loadu_pd(src.as_ptr().add(i));
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            _mm256_storeu_pd(
                dst.as_mut_ptr().add(i),
                _mm256_add_pd(d, _mm256_mul_pd(sv, a)),
            );
        }
        i += 4;
    }
    axpy_col_scalar(s, &src[i..len], &mut dst[i..len]);
}

// ft-check: hot
/// ISA dispatch for the column update; `isa` is resolved once per entry
/// point so pool workers inherit the caller's SIMD override.
#[inline]
fn axpy_col(isa: Isa, s: f64, src: &[f64], dst: &mut [f64]) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Isa::Avx2` is only ever produced by `resolve_isa`
        // after runtime detection of the avx2 feature.
        Isa::Avx2 => unsafe { axpy_col_avx2(s, src, dst) },
        _ => axpy_col_scalar(s, src, dst),
    }
}

/// Shared scalar body of the `gemv^T` dot: `y[j] += alpha * A(:,j)ᵀ x`
/// with the plain `s += a * x` accumulation (two roundings per term) in
/// ascending row order.
#[inline(always)]
fn dot_cols_scalar(a: &MatView<'_>, j0: usize, x: &[f64], alpha: f64, ychunk: &mut [f64]) {
    for (jj, yj) in ychunk.iter_mut().enumerate() {
        let col = a.col(j0 + jj);
        let mut s = 0.0;
        for (&aij, &xi) in col.iter().zip(x.iter()) {
            s += aij * xi;
        }
        *yj += alpha * s;
    }
}

/// AVX2 body of the `gemv^T` dot block: four *adjacent output columns*
/// per iteration, one dot product per lane. Vectorizing across columns
/// (rather than within a dot) keeps each dot's serial ascending-row
/// accumulation chain, and `mul`+`add` keeps the two-roundings-per-term
/// contract, so every lane computes exactly the scalar body's bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn dot_cols_avx2(a: &MatView<'_>, j0: usize, x: &[f64], alpha: f64, ychunk: &mut [f64]) {
    use std::arch::x86_64::*;
    let mut jj = 0;
    while jj + 4 <= ychunk.len() {
        let j = j0 + jj;
        let (c0, c1, c2, c3) = (a.col(j), a.col(j + 1), a.col(j + 2), a.col(j + 3));
        let mut acc = _mm256_setzero_pd();
        for (i, &xi) in x.iter().enumerate().take(c0.len()) {
            let av = _mm256_set_pd(c3[i], c2[i], c1[i], c0[i]);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(av, _mm256_set1_pd(xi)));
        }
        let mut s = [0.0f64; 4];
        // SAFETY: `s` is 4 f64s; storeu has no alignment requirement.
        unsafe { _mm256_storeu_pd(s.as_mut_ptr(), acc) };
        for (l, &sl) in s.iter().enumerate() {
            ychunk[jj + l] += alpha * sl;
        }
        jj += 4;
    }
    dot_cols_scalar(a, j0 + jj, x, alpha, &mut ychunk[jj..]);
}

// ft-check: hot
/// ISA dispatch for the `gemv^T` dot block.
#[inline]
fn dot_cols(isa: Isa, a: &MatView<'_>, j0: usize, x: &[f64], alpha: f64, ychunk: &mut [f64]) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Isa::Avx2` is only ever produced by `resolve_isa`
        // after runtime detection of the avx2 feature.
        Isa::Avx2 => unsafe { dot_cols_avx2(a, j0, x, alpha, ychunk) },
        _ => dot_cols_scalar(a, j0, x, alpha, ychunk),
    }
}

/// Triangular matrix–vector product in place:
/// `x ← op(T)·x` where `T` is the `uplo` triangle of the leading `n × n`
/// part of `a` (`n = x.len()`), optionally with an implicit unit diagonal.
pub fn trmv(uplo: Uplo, trans: Trans, diag: Diag, a: &MatView<'_>, x: &mut [f64]) {
    let n = x.len();
    assert!(
        a.rows() >= n && a.cols() >= n,
        "trmv: matrix {}x{} smaller than order {n}",
        a.rows(),
        a.cols()
    );
    record(model::trmv(n));
    let unit = matches!(diag, Diag::Unit);
    match (uplo, trans) {
        (Uplo::Upper, Trans::No) => {
            // Ascending j: x[i<j] accumulates, x[j] finalized using original value.
            for j in 0..n {
                let temp = x[j];
                if temp != 0.0 {
                    let col = a.col(j);
                    for i in 0..j {
                        x[i] += temp * col[i];
                    }
                    if !unit {
                        x[j] = temp * col[j];
                    }
                } else if !unit {
                    x[j] = 0.0;
                }
            }
        }
        (Uplo::Upper, Trans::Yes) => {
            // Descending j: x[i<j] still original when used.
            for j in (0..n).rev() {
                let col = a.col(j);
                let mut temp = x[j];
                if !unit {
                    temp *= col[j];
                }
                for i in 0..j {
                    temp += col[i] * x[i];
                }
                x[j] = temp;
            }
        }
        (Uplo::Lower, Trans::No) => {
            for j in (0..n).rev() {
                let temp = x[j];
                let col = a.col(j);
                if temp != 0.0 {
                    for i in (j + 1)..n {
                        x[i] += temp * col[i];
                    }
                }
                if !unit {
                    x[j] = temp * col[j];
                }
            }
        }
        (Uplo::Lower, Trans::Yes) => {
            for j in 0..n {
                let col = a.col(j);
                let mut temp = x[j];
                if !unit {
                    temp *= col[j];
                }
                for i in (j + 1)..n {
                    temp += col[i] * x[i];
                }
                x[j] = temp;
            }
        }
    }
}

/// Symmetric matrix–vector product: `y ← α·A·x + β·y`, referencing only
/// the `uplo` triangle of the leading `n × n` part of `a` (`n = x.len()`).
pub fn symv(uplo: Uplo, alpha: f64, a: &MatView<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let n = x.len();
    assert_eq!(y.len(), n, "symv: y length {} != {n}", y.len());
    assert!(
        a.rows() >= n && a.cols() >= n,
        "symv: matrix {}x{} smaller than order {n}",
        a.rows(),
        a.cols()
    );
    record(model::gemv(n, n));
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 {
        return;
    }
    // Column-oriented: for each column j, use the stored triangle for both
    // the (i, j) and the mirrored (j, i) contributions.
    match uplo {
        Uplo::Lower => {
            for j in 0..n {
                let col = a.col(j);
                let temp1 = alpha * x[j];
                let mut temp2 = 0.0;
                y[j] += temp1 * col[j];
                for i in (j + 1)..n {
                    y[i] += temp1 * col[i];
                    temp2 += col[i] * x[i];
                }
                y[j] += alpha * temp2;
            }
        }
        Uplo::Upper => {
            for j in 0..n {
                let col = a.col(j);
                let temp1 = alpha * x[j];
                let mut temp2 = 0.0;
                for i in 0..j {
                    y[i] += temp1 * col[i];
                    temp2 += col[i] * x[i];
                }
                y[j] += temp1 * col[j] + alpha * temp2;
            }
        }
    }
}

/// Symmetric rank-1 update on one triangle: `A ← A + α·x·xᵀ`.
pub fn syr(uplo: Uplo, alpha: f64, x: &[f64], a: &mut MatViewMut<'_>) {
    let n = x.len();
    assert!(
        a.rows() >= n && a.cols() >= n,
        "syr: matrix smaller than order {n}"
    );
    record(model::ger(n, n) / 2);
    if alpha == 0.0 {
        return;
    }
    for j in 0..n {
        let axj = alpha * x[j];
        if axj != 0.0 {
            let (lo, hi) = match uplo {
                Uplo::Upper => (0, j + 1),
                Uplo::Lower => (j, n),
            };
            let col = &mut a.col_mut(j)[lo..hi];
            for (off, aij) in col.iter_mut().enumerate() {
                *aij += axj * x[lo + off];
            }
        }
    }
}

/// Symmetric rank-2 update on one triangle:
/// `A ← A + α·x·yᵀ + α·y·xᵀ`.
pub fn syr2(uplo: Uplo, alpha: f64, x: &[f64], y: &[f64], a: &mut MatViewMut<'_>) {
    let n = x.len();
    assert_eq!(y.len(), n, "syr2: y length {} != {n}", y.len());
    assert!(
        a.rows() >= n && a.cols() >= n,
        "syr2: matrix smaller than order {n}"
    );
    record(model::ger(n, n));
    if alpha == 0.0 {
        return;
    }
    for j in 0..n {
        let ayj = alpha * y[j];
        let axj = alpha * x[j];
        if ayj != 0.0 || axj != 0.0 {
            let (lo, hi) = match uplo {
                Uplo::Upper => (0, j + 1),
                Uplo::Lower => (j, n),
            };
            let col = &mut a.col_mut(j)[lo..hi];
            for (off, aij) in col.iter_mut().enumerate() {
                let i = lo + off;
                *aij += ayj * x[i] + axj * y[i];
            }
        }
    }
}

/// Triangular solve in place: `x ← op(T)⁻¹·x`.
///
/// Panics if a diagonal element is exactly zero for `Diag::NonUnit`.
pub fn trsv(uplo: Uplo, trans: Trans, diag: Diag, a: &MatView<'_>, x: &mut [f64]) {
    let n = x.len();
    assert!(
        a.rows() >= n && a.cols() >= n,
        "trsv: matrix {}x{} smaller than order {n}",
        a.rows(),
        a.cols()
    );
    record(model::trmv(n));
    let unit = matches!(diag, Diag::Unit);
    let div = |v: f64, d: f64| {
        assert!(d != 0.0, "trsv: zero diagonal");
        v / d
    };
    match (uplo, trans) {
        (Uplo::Upper, Trans::No) => {
            // Back substitution.
            for j in (0..n).rev() {
                let col = a.col(j);
                if !unit {
                    x[j] = div(x[j], col[j]);
                }
                let temp = x[j];
                if temp != 0.0 {
                    for i in 0..j {
                        x[i] -= temp * col[i];
                    }
                }
            }
        }
        (Uplo::Lower, Trans::No) => {
            // Forward substitution.
            for j in 0..n {
                let col = a.col(j);
                if !unit {
                    x[j] = div(x[j], col[j]);
                }
                let temp = x[j];
                if temp != 0.0 {
                    for i in (j + 1)..n {
                        x[i] -= temp * col[i];
                    }
                }
            }
        }
        (Uplo::Upper, Trans::Yes) => {
            // Uᵀ is lower triangular: forward substitution with dots.
            for j in 0..n {
                let col = a.col(j);
                let mut temp = x[j];
                for i in 0..j {
                    temp -= col[i] * x[i];
                }
                x[j] = if unit { temp } else { div(temp, col[j]) };
            }
        }
        (Uplo::Lower, Trans::Yes) => {
            for j in (0..n).rev() {
                let col = a.col(j);
                let mut temp = x[j];
                for i in (j + 1)..n {
                    temp -= col[i] * x[i];
                }
                x[j] = if unit { temp } else { div(temp, col[j]) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::Matrix;

    fn a23() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn gemv_notrans() {
        let a = a23();
        let mut y = vec![1.0, 1.0];
        gemv(Trans::No, 2.0, &a.as_view(), &[1.0, 0.0, -1.0], 3.0, &mut y);
        // 2*A*[1,0,-1] + 3*[1,1] = 2*[-2,-2] + [3,3] = [-1,-1]
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    fn gemv_trans() {
        let a = a23();
        let mut y = vec![0.0; 3];
        gemv(Trans::Yes, 1.0, &a.as_view(), &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemv_beta_zero_clears_nan() {
        let a = a23();
        let mut y = vec![f64::NAN, f64::NAN];
        gemv(Trans::No, 1.0, &a.as_view(), &[1.0, 0.0, 0.0], 0.0, &mut y);
        assert_eq!(y, vec![1.0, 4.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0, 5.0], &mut a.as_view_mut());
        assert_eq!(
            a,
            Matrix::from_rows(&[&[6.0, 8.0, 10.0], &[12.0, 16.0, 20.0]])
        );
    }

    fn tri() -> Matrix {
        Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[3.0, 4.0, 2.0], &[-2.0, 5.0, 3.0]])
    }

    fn dense_from_triangle(a: &Matrix, uplo: Uplo, diag: Diag) -> Matrix {
        let n = a.rows();
        Matrix::from_fn(n, n, |i, j| {
            let in_tri = match uplo {
                Uplo::Upper => i <= j,
                Uplo::Lower => i >= j,
            };
            if i == j && matches!(diag, Diag::Unit) {
                1.0
            } else if in_tri {
                a[(i, j)]
            } else {
                0.0
            }
        })
    }

    #[test]
    fn trmv_all_variants_match_dense_gemv() {
        let a = tri();
        let x0 = [1.0, -2.0, 3.0];
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                for diag in [Diag::Unit, Diag::NonUnit] {
                    let t = dense_from_triangle(&a, uplo, diag);
                    let mut expect = vec![0.0; 3];
                    gemv(trans, 1.0, &t.as_view(), &x0, 0.0, &mut expect);
                    let mut x = x0;
                    trmv(uplo, trans, diag, &a.as_view(), &mut x);
                    for i in 0..3 {
                        assert!(
                            (x[i] - expect[i]).abs() < 1e-13,
                            "{uplo:?} {trans:?} {diag:?}: {x:?} vs {expect:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsv_inverts_trmv() {
        let a = tri();
        let x0 = [1.0, -2.0, 3.0];
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                for diag in [Diag::Unit, Diag::NonUnit] {
                    let mut x = x0;
                    trmv(uplo, trans, diag, &a.as_view(), &mut x);
                    trsv(uplo, trans, diag, &a.as_view(), &mut x);
                    for i in 0..3 {
                        assert!(
                            (x[i] - x0[i]).abs() < 1e-12,
                            "{uplo:?} {trans:?} {diag:?}: roundtrip {x:?} vs {x0:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn symv_matches_dense_gemv() {
        let s = ft_matrix::random::symmetric(6, 4);
        let x = [1.0, -2.0, 0.5, 3.0, -1.0, 0.25];
        for uplo in [Uplo::Upper, Uplo::Lower] {
            let mut y = vec![1.0; 6];
            symv(uplo, 2.0, &s.as_view(), &x, -1.0, &mut y);
            let mut expect = vec![1.0; 6];
            gemv(Trans::No, 2.0, &s.as_view(), &x, -1.0, &mut expect);
            for i in 0..6 {
                assert!(
                    (y[i] - expect[i]).abs() < 1e-13,
                    "{uplo:?}: {y:?} vs {expect:?}"
                );
            }
        }
    }

    #[test]
    fn syr_and_syr2_match_dense() {
        let n = 5;
        let x = [1.0, 2.0, -1.0, 0.5, 3.0];
        let y = [-2.0, 1.0, 0.25, 4.0, -0.5];
        for uplo in [Uplo::Upper, Uplo::Lower] {
            // syr
            let mut a = Matrix::zeros(n, n);
            syr(uplo, 1.5, &x, &mut a.as_view_mut());
            for j in 0..n {
                for i in 0..n {
                    let in_tri = match uplo {
                        Uplo::Upper => i <= j,
                        Uplo::Lower => i >= j,
                    };
                    let expect = if in_tri { 1.5 * x[i] * x[j] } else { 0.0 };
                    assert!((a[(i, j)] - expect).abs() < 1e-14, "syr {uplo:?} ({i},{j})");
                }
            }
            // syr2
            let mut a = Matrix::zeros(n, n);
            syr2(uplo, 0.5, &x, &y, &mut a.as_view_mut());
            for j in 0..n {
                for i in 0..n {
                    let in_tri = match uplo {
                        Uplo::Upper => i <= j,
                        Uplo::Lower => i >= j,
                    };
                    let expect = if in_tri {
                        0.5 * (x[i] * y[j] + y[i] * x[j])
                    } else {
                        0.0
                    };
                    assert!(
                        (a[(i, j)] - expect).abs() < 1e-14,
                        "syr2 {uplo:?} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn symv_only_reads_given_triangle() {
        // Poison the opposite triangle with NaN; symv must not read it.
        let n = 4;
        let mut a = ft_matrix::random::symmetric(n, 9);
        for j in 0..n {
            for i in 0..j {
                a[(i, j)] = f64::NAN; // poison the upper triangle
            }
        }
        let x = [1.0; 4];
        let mut y = vec![0.0; 4];
        symv(Uplo::Lower, 1.0, &a.as_view(), &x, 0.0, &mut y);
        assert!(y.iter().all(|v| v.is_finite()), "{y:?}");
    }

    #[test]
    fn gemv_on_subview() {
        let big = Matrix::from_fn(5, 5, |i, j| (i + 2 * j) as f64);
        let v = big.view(1, 1, 2, 3);
        let mut y = vec![0.0; 2];
        gemv(Trans::No, 1.0, &v, &[1.0, 1.0, 1.0], 0.0, &mut y);
        let dense = v.to_owned_matrix();
        let mut expect = vec![0.0; 2];
        gemv(
            Trans::No,
            1.0,
            &dense.as_view(),
            &[1.0, 1.0, 1.0],
            0.0,
            &mut expect,
        );
        assert_eq!(y, expect);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn gemv_shape_mismatch_panics() {
        let a = a23();
        let mut y = vec![0.0; 2];
        gemv(Trans::No, 1.0, &a.as_view(), &[1.0, 2.0], 0.0, &mut y);
    }
}
