//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *API subset it actually uses*:
//! [`Rng`] (`gen_range`, `gen_bool`, `gen`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] / [`rngs::SmallRng`], and
//! [`distributions::Uniform`] / [`distributions::Distribution`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha-based `StdRng`, but everything in
//! this workspace treats seeded randomness generically (deterministic per
//! seed, uniform in range), so the substitution is behavior-preserving.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        u64_to_unit_f64(self.next_u64()) < p
    }

    /// A sample of the type's natural distribution (uniform bits for
    /// integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a `u64` seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn u64_to_unit_f64(x: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can produce.
pub trait Standard {
    /// Builds a sample from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}
impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}
impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        u64_to_unit_f64(bits)
    }
}
impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Scalar types `gen_range` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[low, high)`; `high` must exceed `low`.
    fn sample_half_open(low: Self, high: Self, bits: u64) -> Self;
    /// The successor value (used to widen `a..=b` into `a..b+1`), if any.
    fn successor(self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: Self, high: Self, bits: u64) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift reduction: unbiased enough for test
                // workloads and exactly uniform when span divides 2^64.
                let r = ((bits as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
            fn successor(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_half_open(low: Self, high: Self, bits: u64) -> Self {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        let u = u64_to_unit_f64(bits);
        let v = low + (high - low) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= high {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            v
        }
    }
    fn successor(self) -> Option<Self> {
        None // inclusive float ranges are not used by this workspace
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws the sample from 64 uniform bits.
    fn sample_from(self, bits: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, bits: u64) -> T {
        T::sample_half_open(self.start, self.end, bits)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, bits: u64) -> T {
        let (lo, hi) = self.into_inner();
        let hi1 = hi
            .successor()
            .expect("gen_range: inclusive range over a type without successors");
        T::sample_half_open(lo, hi1, bits)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic default generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start all-zero
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }

    /// Alias of [`StdRng`]: one generator serves both roles offline.
    pub type SmallRng = StdRng;
}

/// `rand::distributions` subset: [`Uniform`] over `f64` and the
/// [`Distribution`] trait.
pub mod distributions {
    use super::{Rng, SampleUniform};

    /// A distribution that can be sampled with any [`Rng`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T: SampleUniform> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over the half-open interval `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: empty interval");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            let bits = rng.next_u64();
            T::sample_half_open(self.low, self.high, bits)
        }
    }
}

/// A convenience thread-local generator (non-deterministic seed), mirroring
/// `rand::thread_rng` loosely; seeded from the system clock.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_covers_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new(-1.0f64, 1.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < -0.9 && max > 0.9, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
