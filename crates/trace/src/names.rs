//! The declared metric-name registry.
//!
//! Every counter, gauge, and span name used anywhere in the workspace is
//! declared here, in one place. This is what makes names *checkable*: the
//! registry in `ft-trace` hands out atomics for whatever string it is
//! given, so a typo'd name does not fail — it silently reports zero while
//! the real metric goes unread. `ft-check` rule FTC006 closes that hole
//! by rejecting any name literal that does not appear in these slices
//! (and FTC000 flags declared names that are never used, via the
//! allowlist-staleness mechanism applied to this file's own test).
//!
//! Keep each slice sorted; the unit test enforces order and uniqueness.

/// Every counter name the workspace records (see DESIGN.md §9 for the
/// meaning of each family).
pub const COUNTERS: &[&str] = &[
    "abft.corrected",
    "abft.detected",
    "ft.corrections",
    "ft.recoveries",
    "pool.dispatch",
    "pool.dispatch_async",
    "pool.inline_fallback",
    "pool.spawn",
    "serve.canceled",
    "serve.completed",
    "serve.deadline_missed",
    "serve.failed",
    "serve.rejected",
    "serve.retries",
    "serve.submitted",
    "trace.recorder.dropped",
    "workspace.growth",
];

/// Every gauge name the workspace records. The `serve.queue_depth_*`
/// family is per priority lane; bare `serve.queue_depth` is the total.
pub const GAUGES: &[&str] = &[
    "pool.async_inflight",
    "serve.in_flight",
    "serve.queue_depth",
    "serve.queue_depth_high",
    "serve.queue_depth_low",
    "serve.queue_depth_normal",
    "trace.recorder.occupancy",
];

/// Every histogram name the workspace records: four per priority lane —
/// end-to-end latency plus its queue-wait / execution / backoff-wait
/// decomposition (all in µs, recorded by `ft-serve` on job completion).
pub const HISTOGRAMS: &[&str] = &[
    "serve.backoff_high",
    "serve.backoff_low",
    "serve.backoff_normal",
    "serve.exec_high",
    "serve.exec_low",
    "serve.exec_normal",
    "serve.latency_high",
    "serve.latency_low",
    "serve.latency_normal",
    "serve.queue_wait_high",
    "serve.queue_wait_low",
    "serve.queue_wait_normal",
];

/// Every span name the workspace opens. The `ft.*` entries are the
/// disjoint leaf phases whose durations decompose a run's wall-clock.
pub const SPANS: &[&str] = &[
    "blas.abft",
    "ft.correct",
    "ft.detect",
    "ft.encode",
    "ft.locate",
    "ft.panel",
    "ft.qprotect",
    "ft.reverse",
    "ft.trailing",
    "gehrd.far",
    "gehrd.left_update",
    "gehrd.near",
    "gehrd.overlap",
    "gehrd.panel",
    "gehrd.right_update",
    "gehrd.tail",
    "lahr2",
    "pool.dispatch",
    "pool.task",
    "serve.run",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_unique(names: &[&str], what: &str) {
        for w in names.windows(2) {
            assert!(
                w[0] < w[1],
                "{what} registry must be sorted and duplicate-free: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn registries_are_sorted_and_unique() {
        assert_sorted_unique(COUNTERS, "counter");
        assert_sorted_unique(GAUGES, "gauge");
        assert_sorted_unique(SPANS, "span");
        assert_sorted_unique(HISTOGRAMS, "histogram");
    }

    #[test]
    fn names_are_dot_separated_lowercase() {
        for name in COUNTERS.iter().chain(GAUGES).chain(SPANS).chain(HISTOGRAMS) {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "metric names are lowercase dot/underscore only: {name:?}"
            );
        }
    }
}
