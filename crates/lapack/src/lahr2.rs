//! Panel factorization for the blocked Hessenberg reduction
//! (LAPACK `DLAHR2`, the paper's `DLAHRD` / `MAGMA_DLAHR2` step).
//!
//! Given the matrix `A` (with all previous panels applied) and a panel of
//! `ib` columns starting at column `k`, this routine:
//!
//! 1. generates the `ib` Householder reflectors that annihilate each panel
//!    column below the first sub-diagonal, *incrementally updating* each
//!    column by the previously generated reflectors from both sides before
//!    its reflector is formed;
//! 2. accumulates the compact WY triangular factor `T`;
//! 3. computes `Y = A·V·T` (full height), the quantity the trailing-matrix
//!    right update `A ← A − Y·Vᵀ` consumes — and, in the fault-tolerant
//!    algorithm, the quantity whose column checksums (`Yce`) extend the
//!    update to the checksum border (paper Algorithm 3, line 6).
//!
//! The panel columns of `A` are left in LAPACK storage: final `H` values on
//! and above the sub-diagonal, reflector tails below it.

use crate::householder::larfg;
use ft_blas::{gemm, gemv, scal, trmm, trmv, Diag, Side, Trans, Uplo};
use ft_matrix::{MatViewMut, Matrix};

/// Output of one panel factorization.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Reflector matrix, `(n − k − 1) × ib`, explicit storage: column `j`
    /// is `v_j` with zeros above its unit element at local row `j`.
    /// Local row `r` corresponds to global row `k + 1 + r`.
    pub v: Matrix,
    /// Upper triangular compact WY factor, `ib × ib`.
    pub t: Matrix,
    /// `Y = A·V·T`, full height `n × ib` (`A` as of panel entry).
    pub y: Matrix,
    /// Reflector scales.
    pub tau: Vec<f64>,
    /// Panel start column `k`.
    pub k: usize,
}

impl Panel {
    /// Panel width.
    pub fn ib(&self) -> usize {
        self.v.cols()
    }

    /// Reflector space height `n − k − 1`.
    pub fn m(&self) -> usize {
        self.v.rows()
    }
}

/// Factorizes the `ib`-column panel of `a` starting at column `k`.
///
/// Requires `ib ≤ n − k − 2` so every reflector has at least one element to
/// annihilate or sits on the last reducible column (`ib ≤ n − k − 1` is the
/// hard bound; `tau = 0` reflectors are handled).
pub fn lahr2(a: &mut Matrix, k: usize, ib: usize) -> Panel {
    assert!(a.is_square(), "lahr2: matrix must be square");
    let n = a.rows();
    lahr2_within(a, n, k, ib)
}

/// [`lahr2`] restricted to the leading `n × n` block of a larger storage
/// matrix — used by the fault-tolerant driver, whose working matrix
/// carries an extra checksum row and column that the panel factorization
/// must not see.
///
/// This is exactly [`lahr2_prefix`] with nothing deferred (`far = n`)
/// followed by [`lahr2_finish`]: the sequential and lookahead schedules
/// share one code body, which is what makes their bit-identity hold by
/// construction.
pub fn lahr2_within(a: &mut Matrix, n: usize, k: usize, ib: usize) -> Panel {
    let state = lahr2_prefix(a.as_view_mut(), n, k, ib, n);
    lahr2_finish(a, state)
}

/// Panel state between [`lahr2_prefix`] and [`lahr2_finish`]: column 0 of
/// the panel is reduced and its `Y` column holds the partial `A·v₀`
/// accumulated over the matrix columns left of `far`; every operation
/// that reads columns `far..n` is deferred to the finish phase. The state
/// owns all panel storage and scratch — it borrows nothing from `A`, so
/// the caller is free to mutate columns `far..n` (the in-flight far
/// update) while holding it.
pub struct PanelInProgress {
    v: Matrix,
    t: Matrix,
    y: Matrix,
    tau: Vec<f64>,
    b: Vec<f64>,
    vrow: Vec<f64>,
    w: Vec<f64>,
    w2: Vec<f64>,
    n: usize,
    k: usize,
    ib: usize,
    far: usize,
}

/// The lookahead half-step of the panel factorization: reduces panel
/// column 0 and accumulates the *near* segment of its `Y` column — every
/// read it performs lands strictly left of column `far`, so it can run
/// while pool workers are still applying the previous panel's far
/// trailing update to columns `far..n`. `head` must be a view whose
/// columns cover at least `0..far` of the logical matrix (global row and
/// column indices are preserved; pass the full matrix view with
/// `far = n` for the sequential schedule).
///
/// The depth of this prefix is a structural property of the Hessenberg
/// panel, not an implementation choice: column `j ≥ 1` of the panel needs
/// `Y(:, j−1)`, whose computation reads **every** trailing column of `A`
/// (see DESIGN.md §8.2) — so column 0's near work is all the panel
/// factorization that exists left of the far boundary.
pub fn lahr2_prefix(
    mut head: MatViewMut<'_>,
    n: usize,
    k: usize,
    ib: usize,
    far: usize,
) -> PanelInProgress {
    let _span = ft_trace::span!("lahr2", k);
    assert!(
        head.rows() >= n && head.cols() >= far,
        "lahr2_prefix: view smaller than the promised near region"
    );
    assert!(
        k + 1 < n,
        "lahr2: panel start {k} leaves no sub-diagonal rows"
    );
    assert!(
        k < far && far <= n,
        "lahr2_prefix: far boundary {far} outside (k, n] for k={k}, n={n}"
    );
    let m = n - k - 1;
    assert!(
        ib <= m,
        "lahr2: panel width {ib} exceeds reflector space {m}"
    );

    let mut v = Matrix::zeros(m, ib);
    let t = Matrix::zeros(ib, ib);
    let mut y = Matrix::zeros(n, ib);
    let mut tau = vec![0.0; ib];
    let mut b = vec![0.0; m];
    // Reflector-loop scratch, hoisted so the j-loop performs zero heap
    // allocations (sliced to length j per iteration; the gemv calls that
    // fill them use beta = 0, i.e. overwrite semantics, so reuse cannot
    // leak values between iterations).
    let vrow = vec![0.0; ib];
    let w = vec![0.0; ib];
    let w2 = vec![0.0; ib];

    // Column 0 of the panel (j = 0: no right/left updates from previous
    // reflectors exist yet). Global column k, reflector rows k+1..n.
    b.copy_from_slice(&head.col(k)[k + 1..n]);

    // Generate the reflector annihilating b[1..].
    let alpha = b[0];
    let (_, tail) = b.split_at_mut(1);
    let refl = larfg(alpha, tail);
    tau[0] = refl.tau;
    v[(0, 0)] = 1.0;
    for r in 1..m {
        v[(r, 0)] = b[r];
    }

    // Write the finished column back (LAPACK storage): β on the
    // sub-diagonal, reflector tail below it.
    {
        let col = head.col_mut(k);
        col[k + 1] = refl.beta;
        col[k + 2..n].copy_from_slice(&b[1..]);
    }

    // Near segment of Y(k+1.., 0) = A(k+1.., k+1..far)·v₀[..far−k−1]:
    // the leading columns of the full gemv, accumulated in the exact
    // per-element order the unsplit call uses (ascending columns), so
    // finishing with the far segment under beta = 1 reproduces the
    // sequential bits.
    {
        let near_w = far - k - 1;
        let vtail = &v.col(0)[..m];
        let yj = &mut y.col_mut(0)[k + 1..n];
        gemv(
            Trans::No,
            1.0,
            &head.as_view().subview(k + 1, k + 1, m, near_w),
            &vtail[..near_w],
            0.0,
            yj,
        );
    }

    PanelInProgress {
        v,
        t,
        y,
        tau,
        b,
        vrow,
        w,
        w2,
        n,
        k,
        ib,
        far,
    }
}

/// Completes a panel begun by [`lahr2_prefix`] once columns `far..n` are
/// fully updated again: folds the far segment into column 0's `Y`, then
/// reduces panel columns `1..ib` and assembles `T` and the top rows of
/// `Y` exactly as the sequential code does.
pub fn lahr2_finish(a: &mut Matrix, state: PanelInProgress) -> Panel {
    let PanelInProgress {
        mut v,
        mut t,
        mut y,
        mut tau,
        mut b,
        mut vrow,
        mut w,
        mut w2,
        n,
        k,
        ib,
        far,
    } = state;
    let _span = ft_trace::span!("lahr2", k);
    assert!(
        a.rows() >= n && a.cols() >= n,
        "lahr2_within: storage smaller than logical n"
    );
    let m = n - k - 1;

    // Far segment of Y(k+1.., 0), then the tail of the j = 0 iteration
    // (scale by τ₀ and seed T). With far = n the far gemv is empty and
    // this is byte-for-byte the sequential column-0 epilogue.
    {
        let near_w = far - k - 1;
        let vtail = &v.col(0)[..m];
        let yj = &mut y.col_mut(0)[k + 1..n];
        if near_w < m {
            gemv(
                Trans::No,
                1.0,
                &a.view(k + 1, far, m, n - far),
                &vtail[near_w..],
                1.0,
                yj,
            );
        }
        scal(tau[0], yj);
        t[(0, 0)] = tau[0];
    }

    for j in 1..ib {
        let c = k + j; // global column being reduced

        // Current column over the reflector rows (global rows k+1..n).
        b.copy_from_slice(&a.col(c)[k + 1..n]);

        {
            // (1) Right update from the previous reflectors:
            //     b ← b − Y(k+1.., 0..j) · V(j−1, 0..j)ᵀ
            // (row j−1 of V is the row that multiplies column c = k+j in
            // the right update A·V·T·Vᵀ).
            let vrow = &mut vrow[..j];
            for (cc, dst) in vrow.iter_mut().enumerate() {
                *dst = v[(j - 1, cc)];
            }
            gemv(Trans::No, -1.0, &y.view(k + 1, 0, m, j), vrow, 1.0, &mut b);

            // (2) Left update: b ← (I − V·Tᵀ·Vᵀ)·b  [= (I − V·T·Vᵀ)ᵀ·b]
            let w = &mut w[..j];
            gemv(Trans::Yes, 1.0, &v.view(0, 0, m, j), &b, 0.0, w);
            trmv(Uplo::Upper, Trans::Yes, Diag::NonUnit, &t.as_view(), w);
            gemv(Trans::No, -1.0, &v.view(0, 0, m, j), w, 1.0, &mut b);
        }

        // (3) Generate the reflector annihilating b[j+1..].
        let alpha = b[j];
        let (_, tail) = b.split_at_mut(j + 1);
        let refl = larfg(alpha, tail);
        tau[j] = refl.tau;
        v[(j, j)] = 1.0;
        for r in j + 1..m {
            v[(r, j)] = b[r];
        }

        // (4) Write the finished column back (LAPACK storage): updated H
        // values above the pivot, β on the sub-diagonal, reflector tail
        // below it.
        {
            let col = a.col_mut(c);
            col[k + 1..k + 1 + j].copy_from_slice(&b[..j]);
            col[k + 1 + j] = refl.beta;
            col[k + 2 + j..n].copy_from_slice(&b[j + 1..]);
        }

        // (5) Y(k+1.., j) = τ_j (A·v_j − Y_prev·(V_prevᵀ·v_j)),
        //     using only the still-original columns c+1..n of A.
        {
            let vtail = &v.col(j)[j..m];
            let (ylo, mut yj_rest) = y.as_view_mut().split_at_col(j);
            let yj = &mut yj_rest.col_mut(0)[k + 1..n];
            gemv(
                Trans::No,
                1.0,
                &a.view(k + 1, c + 1, m, n - c - 1),
                vtail,
                0.0,
                yj,
            );
            let w2 = &mut w2[..j];
            gemv(Trans::Yes, 1.0, &v.view(0, 0, m, j), v.col(j), 0.0, w2);
            gemv(
                Trans::No,
                -1.0,
                &ylo.as_view().subview(k + 1, 0, m, j),
                w2,
                1.0,
                yj,
            );
            scal(tau[j], yj);

            // (6) T(0..j, j) = T(0..j, 0..j)·(−τ_j·w2);  T(j, j) = τ_j.
            scal(-tau[j], w2);
            trmv(Uplo::Upper, Trans::No, Diag::NonUnit, &t.as_view(), w2);
            t.view_mut(0, j, j, 1).col_mut(0).copy_from_slice(w2);
            t[(j, j)] = tau[j];
        }
    }

    // Top rows of Y: Y(0..k+1, :) = A(0..k+1, k+1..n) · V · T.
    // Only rows ≤ k of A are read here — the panel writes in step (4) never
    // touched them, so these are still the panel-entry values.
    gemm(
        Trans::No,
        Trans::No,
        1.0,
        &a.view(0, k + 1, k + 1, m),
        &v.as_view(),
        0.0,
        &mut y.view_mut(0, 0, k + 1, ib),
    );
    trmm(
        Side::Right,
        Uplo::Upper,
        Trans::No,
        Diag::NonUnit,
        1.0,
        &t.as_view(),
        &mut y.view_mut(0, 0, k + 1, ib),
    );

    Panel { v, t, y, tau, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::{assert_matrix_eq, Matrix};

    /// Oracle: Y must equal A_entry · V · T.
    #[test]
    fn y_equals_avt() {
        let n = 12;
        let k = 2;
        let ib = 4;
        let a0 = ft_matrix::random::uniform(n, n, 21);
        let mut a = a0.clone();
        let p = lahr2(&mut a, k, ib);

        // Build V as an n × ib matrix (zero outside rows k+1..n).
        let mut vfull = Matrix::zeros(n, ib);
        vfull.set_sub_matrix(k + 1, 0, &p.v);
        let mut vt = Matrix::zeros(n, ib);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &vfull.as_view(),
            &p.t.as_view(),
            0.0,
            &mut vt.as_view_mut(),
        );
        let mut expect_y = Matrix::zeros(n, ib);
        ft_blas::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a0.as_view(),
            &vt.as_view(),
            0.0,
            &mut expect_y.as_view_mut(),
        );

        assert_matrix_eq(&p.y, &expect_y, 1e-12, "Y = A·V·T");
    }

    /// Oracle: the panel columns must match what the unblocked algorithm
    /// produces when run on the same matrix (same reflectors, same H
    /// values), for a panel starting at column 0.
    #[test]
    fn panel_matches_unblocked_prefix() {
        let n = 10;
        let ib = 3;
        let a0 = ft_matrix::random::uniform(n, n, 22);

        let mut ab = a0.clone();
        let p = lahr2(&mut ab, 0, ib);

        let mut au = a0.clone();
        let tau_u = crate::gehd2::gehd2(&mut au);

        // Reflector scales and stored panel sub-diagonal columns agree.
        for j in 0..ib {
            assert!((p.tau[j] - tau_u[j]).abs() < 1e-12, "tau[{j}]");
            for i in j + 1..n {
                assert!(
                    (ab[(i, j)] - au[(i, j)]).abs() < 1e-12,
                    "stored panel col {j}, row {i}: {} vs {}",
                    ab[(i, j)],
                    au[(i, j)]
                );
            }
        }
    }

    /// V is unit lower trapezoidal: zeros above the unit diagonal.
    #[test]
    fn v_structure() {
        let n = 9;
        let mut a = ft_matrix::random::uniform(n, n, 23);
        let p = lahr2(&mut a, 1, 3);
        for j in 0..3 {
            for r in 0..j {
                assert_eq!(p.v[(r, j)], 0.0, "V({r},{j}) above diagonal");
            }
            assert_eq!(p.v[(j, j)], 1.0, "V unit diagonal at {j}");
        }
        assert!(p.t.is_upper_triangular_tol(0.0));
    }

    /// T satisfies the compact WY identity: the block reflector built from
    /// (V, T) equals the product of the elementary reflectors.
    #[test]
    fn t_is_consistent_with_larft() {
        let n = 11;
        let mut a = ft_matrix::random::uniform(n, n, 24);
        let p = lahr2(&mut a, 0, 4);
        let t2 = crate::wy::larft(&p.v.as_view(), &p.tau);
        assert_matrix_eq(&p.t, &t2, 1e-12, "lahr2 T vs larft T");
    }
}
