//! Property tests pinning the two contracts the HDR histogram is used
//! for:
//!
//! 1. **bounded quantile error**: against the exact sorted-sample
//!    quantile of any input, the reported value never under-reports and
//!    over-reports by at most `2^-SUB_BITS` relative (one sub-bucket
//!    width), including on adversarial distributions — heavy ties,
//!    power-law tails, values straddling bucket-group edges;
//! 2. **merge algebra**: per-bucket addition is associative and
//!    commutative, and merging shard-local snapshots is
//!    indistinguishable from recording everything into one histogram —
//!    the contract loadgen's per-client shards and the serve stats
//!    double-recording rest on.

use ft_trace::{HistSnapshot, SUB_BITS};
use proptest::prelude::*;

/// Exact quantile of a sorted sample at the same rank convention the
/// histogram uses (`⌈q·n⌉`, 1-based, clamped).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// The documented bound: reported ≥ exact, and reported ≤ exact plus one
/// sub-bucket width (`exact / 2^SUB_BITS + 1` absorbs integer-edge
/// rounding for small values).
fn assert_within_bound(reported: u64, exact: u64, q: f64) {
    assert!(
        reported >= exact,
        "quantile({q}) = {reported} under-reports exact {exact}"
    );
    let slack = exact / (1u64 << SUB_BITS) + 1;
    assert!(
        reported - exact <= slack,
        "quantile({q}) = {reported} exceeds exact {exact} by more than {slack}"
    );
}

/// Adversarial value generator: uniform small values, exact
/// bucket-group edges (powers of two ± 1), and a heavy log-uniform tail
/// up to `u64::MAX / 2`.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..128,
        (5u32..62).prop_flat_map(|e| {
            let base = 1u64 << e;
            prop_oneof![Just(base - 1), Just(base), Just(base + 1)]
        }),
        (0u32..63).prop_flat_map(|e| (1u64 << e)..(1u64 << e).saturating_mul(2)),
    ]
}

proptest! {
    /// Every reported quantile of every input distribution stays inside
    /// the documented relative-error envelope.
    #[test]
    fn quantile_error_is_bounded(
        values in proptest::collection::vec(value_strategy(), 1..512),
    ) {
        let mut h = HistSnapshot::new();
        let mut sorted = values.clone();
        for &v in &values {
            h.record(v);
        }
        sorted.sort_unstable();
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.max, *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_within_bound(h.quantile(q), exact_quantile(&sorted, q), q);
        }
    }

    /// Merging shards in any association is exactly recording everything
    /// into one histogram: ((a ∪ b) ∪ c) = (a ∪ (b ∪ c)) = direct.
    #[test]
    fn merge_is_associative_and_matches_direct_recording(
        a in proptest::collection::vec(value_strategy(), 0..64),
        b in proptest::collection::vec(value_strategy(), 0..64),
        c in proptest::collection::vec(value_strategy(), 0..64),
    ) {
        let shard = |vals: &[u64]| {
            let mut h = HistSnapshot::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (shard(&a), shard(&b), shard(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        let mut direct = HistSnapshot::new();
        for &v in a.iter().chain(&b).chain(&c) {
            direct.record(v);
        }

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &direct);

        // Commutativity on the two-shard case.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
    }

    /// The quantile of a merged snapshot obeys the same error bound as a
    /// directly recorded one (merging loses no precision).
    #[test]
    fn merged_quantiles_stay_bounded(
        shards in proptest::collection::vec(
            proptest::collection::vec(value_strategy(), 1..64), 1..8),
    ) {
        let mut merged = HistSnapshot::new();
        let mut all: Vec<u64> = Vec::new();
        for shard in &shards {
            let mut h = HistSnapshot::new();
            for &v in shard {
                h.record(v);
                all.push(v);
            }
            merged.merge(&h);
        }
        all.sort_unstable();
        prop_assert_eq!(merged.count, all.len() as u64);
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_within_bound(merged.quantile(q), exact_quantile(&all, q), q);
        }
    }
}
