//! Host-side protection of the `Q` factor (paper §IV-E).
//!
//! The Householder vectors live below the first sub-diagonal of the
//! reduced columns. They are generated on the host, never modified — and
//! never *read* — after their panel finishes, so one checksum per row and
//! per column suffices to locate and correct an error, and the check only
//! needs to run once, at the end of the factorization.
//!
//! Checksum maintenance mirrors Figure 5 of the paper: when a panel
//! finishes, its per-row partial sums are folded into the running
//! row-checksum vector (`Qr_chk`, the dashed line on the left) and its
//! per-column sums are written into the corresponding *segment* of the
//! column-checksum vector (`Qc_chk`, the dashed line at the bottom),
//! which is never touched again. The reflector scales `tau` carry their
//! own scalar checksum.

use ft_matrix::Matrix;

/// Running checksums over the `Q` (Householder-vector) storage region.
#[derive(Clone, Debug)]
pub struct QProtection {
    n: usize,
    /// Row sums over all absorbed panels (`Qr_chk`), length `n`.
    qr_chk: Vec<f64>,
    /// Per-column sums (`Qc_chk`), length `n`; segment `j` written when
    /// column `j`'s panel finishes.
    qc_chk: Vec<f64>,
    /// Scalar checksum over the reflector scales.
    tau_sum: f64,
    /// Columns absorbed so far (the frontier).
    frontier: usize,
}

/// An error found (and fixed) by the final `Q` verification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QCorrection {
    /// Corrected row.
    pub row: usize,
    /// Corrected column.
    pub col: usize,
    /// `stored − correct`.
    pub delta: f64,
}

impl QProtection {
    /// Empty protection state for an `n × n` factorization.
    pub fn new(n: usize) -> Self {
        QProtection {
            n,
            qr_chk: vec![0.0; n],
            qc_chk: vec![0.0; n],
            tau_sum: 0.0,
            frontier: 0,
        }
    }

    /// Columns protected so far.
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    /// Absorbs a finished panel: columns `k..k+ib` of `packed` (an
    /// `(n+…) × (n+…)` storage whose leading `n × n` block is the LAPACK
    /// packed factorization), with reflector scales `taus`.
    ///
    /// Must be called in order (`k == frontier`), *after* the iteration
    /// has been verified — so a rolled-back iteration is never absorbed
    /// twice.
    pub fn absorb_panel(&mut self, packed: &Matrix, k: usize, ib: usize, taus: &[f64]) {
        assert_eq!(k, self.frontier, "panels must be absorbed in order");
        assert!(taus.len() >= ib.min(taus.len()));
        for j in k..(k + ib).min(self.n) {
            let mut colsum = 0.0;
            for i in (j + 2)..self.n {
                let v = packed[(i, j)];
                self.qr_chk[i] += v;
                colsum += v;
            }
            self.qc_chk[j] = colsum;
        }
        for &t in taus.iter().take(ib) {
            self.tau_sum += t;
        }
        self.frontier = k + ib;
    }

    /// Recomputes both checksum vectors from the stored data and corrects
    /// any located errors in place (paper §IV-F, applied once at the end).
    ///
    /// Returns the corrections performed. Uses the same deficit-matching
    /// logic as the trailing-matrix recovery: single errors and
    /// non-rectangle multi-error patterns are corrected.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must count as exceeded
    pub fn verify_and_correct(&self, packed: &mut Matrix, tol: f64) -> Vec<QCorrection> {
        let n = self.n;
        let mut row_sums = vec![0.0; n];
        let mut col_sums = vec![0.0; n];
        for j in 0..self.frontier {
            for i in (j + 2)..n {
                let v = packed[(i, j)];
                row_sums[i] += v;
                col_sums[j] += v;
            }
        }
        let row_def: Vec<(usize, f64)> = (0..n)
            .filter_map(|i| {
                let d = row_sums[i] - self.qr_chk[i];
                if !(d.abs() <= tol) {
                    Some((i, d))
                } else {
                    None
                }
            })
            .collect();
        let col_def: Vec<(usize, f64)> = (0..n)
            .filter_map(|j| {
                let d = col_sums[j] - self.qc_chk[j];
                if !(d.abs() <= tol) {
                    Some((j, d))
                } else {
                    None
                }
            })
            .collect();

        let mut corrections = vec![];
        match (row_def.len(), col_def.len()) {
            (0, 0) => {}
            (1, _) => {
                let (r, _) = row_def[0];
                for &(c, d) in &col_def {
                    corrections.push(QCorrection {
                        row: r,
                        col: c,
                        delta: d,
                    });
                }
            }
            (_, 1) => {
                let (c, _) = col_def[0];
                for &(r, d) in &row_def {
                    corrections.push(QCorrection {
                        row: r,
                        col: c,
                        delta: d,
                    });
                }
            }
            _ => {
                // Peel unique magnitude matches (non-rectangle patterns).
                let mut rows = row_def;
                let mut cols = col_def;
                while !rows.is_empty() && !cols.is_empty() {
                    let mut advanced = false;
                    'outer: for ri in 0..rows.len() {
                        let (r, rd) = rows[ri];
                        let cands: Vec<usize> = (0..cols.len())
                            .filter(|&ci| (rd - cols[ci].1).abs() <= tol.max(1e-9 * rd.abs()))
                            .collect();
                        if cands.len() == 1 {
                            let (c, d) = cols[cands[0]];
                            corrections.push(QCorrection {
                                row: r,
                                col: c,
                                delta: d,
                            });
                            rows.remove(ri);
                            cols.remove(cands[0]);
                            advanced = true;
                            break 'outer;
                        }
                    }
                    if !advanced {
                        break;
                    }
                }
            }
        }
        for c in &corrections {
            let old = packed[(c.row, c.col)];
            packed[(c.row, c.col)] = old - c.delta;
        }
        corrections
    }

    /// Verifies and repairs a single corrupted `tau` via the scalar
    /// checksum. Returns the corrected index, if any.
    pub fn verify_taus(&self, taus: &mut [f64], tol: f64) -> Option<usize> {
        let sum: f64 = taus.iter().sum();
        let d = sum - self.tau_sum;
        if d.abs() <= tol {
            return None;
        }
        // Locate which tau is off: LAPACK taus are either 0 or in [1, 2];
        // with a single corruption the deficit identifies it only if we
        // know the clean value. We repair by distributing the deficit to
        // the unique out-of-range entry if one exists.
        let suspect = taus
            .iter()
            .position(|&t| t.is_nan() || !(t == 0.0 || (1.0..=2.0).contains(&t)))?;
        // Recompute from the checksum minus the healthy entries (robust to
        // a NaN corruption, where subtracting the deficit would be NaN).
        let others: f64 = taus
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != suspect)
            .map(|(_, &t)| t)
            .sum();
        taus[suspect] = self.tau_sum - others;
        Some(suspect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_lapack::{gehrd, GehrdConfig};

    /// A real packed factorization plus fully-absorbed protection.
    fn protected(n: usize, nb: usize, seed: u64) -> (Matrix, Vec<f64>, QProtection) {
        let mut a = ft_matrix::random::uniform(n, n, seed);
        let tau = gehrd(
            &mut a,
            &GehrdConfig {
                nb,
                nx: 1,
                lookahead: false,
            },
        );
        let mut q = QProtection::new(n);
        let mut k = 0;
        while k < n - 2 {
            let ib = nb.min(n - 2 - k);
            q.absorb_panel(&a, k, ib, &tau[k..k + ib]);
            k += ib;
        }
        (a, tau, q)
    }

    #[test]
    fn clean_q_verifies_clean() {
        let (mut a, _tau, q) = protected(24, 6, 1);
        let fixes = q.verify_and_correct(&mut a, 1e-10);
        assert!(fixes.is_empty());
    }

    #[test]
    fn single_q_error_corrected() {
        let (mut a, _tau, q) = protected(24, 6, 2);
        let truth = a[(15, 4)]; // below sub-diagonal of a reduced column
        a[(15, 4)] += 0.125;
        let fixes = q.verify_and_correct(&mut a, 1e-10);
        assert_eq!(fixes.len(), 1);
        assert_eq!((fixes[0].row, fixes[0].col), (15, 4));
        assert!((a[(15, 4)] - truth).abs() < 1e-12);
    }

    #[test]
    fn two_q_errors_distinct_rows_cols() {
        let (mut a, _tau, q) = protected(30, 8, 3);
        let t1 = a[(10, 3)];
        let t2 = a[(22, 17)];
        a[(10, 3)] += 0.5;
        a[(22, 17)] -= 0.25;
        let fixes = q.verify_and_correct(&mut a, 1e-10);
        assert_eq!(fixes.len(), 2);
        assert!((a[(10, 3)] - t1).abs() < 1e-12);
        assert!((a[(22, 17)] - t2).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_absorb_panics() {
        let (a, tau, _) = protected(12, 4, 4);
        let mut q = QProtection::new(12);
        let result = std::panic::catch_unwind(move || {
            q.absorb_panel(&a, 4, 4, &tau[4..8]); // skips panel 0
        });
        assert!(result.is_err());
    }

    #[test]
    fn tau_checksum_repairs_nan() {
        let (a, mut tau, q) = protected(20, 5, 5);
        let _ = a;
        let truth = tau[3];
        tau[3] = f64::NAN;
        let fixed = q.verify_taus(&mut tau, 1e-10);
        assert_eq!(fixed, Some(3));
        assert!(!tau[3].is_nan(), "repair must clear the NaN");
        assert!((tau[3] - truth).abs() < 1e-9, "{} vs {truth}", tau[3]);
    }
}
