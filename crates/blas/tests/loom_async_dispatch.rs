//! Loom model of the [`ft_blas::AsyncHandle`] completion-token protocol
//! used by the lookahead pipeline's async far-update dispatch. The pool
//! itself stays on std under loom (OS threads are not modeled), so —
//! like `loom_latch.rs` — this models the handle's protocol directly on
//! the shared [`Latch`] concurrency core: a `ModelHandle` that mirrors
//! `AsyncHandle::finish` statement for statement (wait on the latch,
//! re-raise the first task panic unless the thread is already
//! unwinding, same behavior on drop as on wait).
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p ft-blas --test
//! loom_async_dispatch`.

#![cfg(loom)]

use ft_blas::latch::Latch;
use loom::sync::Arc;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Mirror of `AsyncHandle`'s resolution protocol (`pool.rs`): the two
/// must stay in lockstep for this model to vouch for the real type.
struct ModelHandle {
    latch: Option<Arc<Latch>>,
}

impl ModelHandle {
    fn new(latch: Arc<Latch>) -> ModelHandle {
        ModelHandle { latch: Some(latch) }
    }

    fn wait(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(latch) = self.latch.take() {
            latch.wait();
            if let Some(p) = latch.take_panic() {
                if !std::thread::panicking() {
                    resume_unwind(p);
                }
            }
        }
    }
}

impl Drop for ModelHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// The whole point of the token: `wait` must not return until every
/// task has run. The counter is bumped before each `complete`, so any
/// schedule in which the latch releases the waiter early shows up as a
/// short count (the vendored checker explores mutex/condvar
/// interleavings; the counter itself is a plain std atomic).
#[test]
fn wait_returns_only_after_every_task_effect_is_visible() {
    loom::model(|| {
        let latch = Arc::new(Latch::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&latch);
                let d = Arc::clone(&done);
                loom::thread::spawn(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                    l.complete(None);
                })
            })
            .collect();
        let handle = ModelHandle::new(Arc::clone(&latch));
        handle.wait();
        assert_eq!(
            done.load(Ordering::Relaxed),
            2,
            "wait returned before a task's writes became visible"
        );
        for w in workers {
            w.join().unwrap();
        }
    });
}

/// A panic inside an async task must cross to the caller at the wait
/// point with its payload intact.
#[test]
fn task_panic_is_rethrown_at_wait() {
    loom::model(|| {
        let latch = Arc::new(Latch::new(1));
        let l = Arc::clone(&latch);
        let worker = loom::thread::spawn(move || l.complete(Some(Box::new("task boom"))));
        let handle = ModelHandle::new(Arc::clone(&latch));
        let payload =
            catch_unwind(AssertUnwindSafe(|| handle.wait())).expect_err("panic must propagate");
        assert_eq!(
            *payload.downcast::<&str>().expect("payload type"),
            "task boom"
        );
        worker.join().unwrap();
    });
}

/// Dropping the handle without an explicit wait performs the same join —
/// an early return between dispatch and wait can never leave a task
/// running against dead borrows. `is_resolved` after the drop doubles as
/// the non-blocking-observer check.
#[test]
fn drop_before_wait_still_joins_the_tasks() {
    loom::model(|| {
        let latch = Arc::new(Latch::new(1));
        let done = Arc::new(AtomicUsize::new(0));
        let l = Arc::clone(&latch);
        let d = Arc::clone(&done);
        let worker = loom::thread::spawn(move || {
            d.fetch_add(1, Ordering::Relaxed);
            l.complete(None);
        });
        {
            let _handle = ModelHandle::new(Arc::clone(&latch));
            // Dropped here, no wait() call.
        }
        assert_eq!(
            done.load(Ordering::Relaxed),
            1,
            "drop must join the in-flight task"
        );
        assert!(latch.is_resolved());
        worker.join().unwrap();
    });
}

/// When the *caller* is already unwinding, the drop still joins the task
/// but swallows the task's panic instead of double-panicking (which
/// would abort the process). The caller's own panic wins.
#[test]
fn drop_during_unwind_swallows_the_task_panic() {
    loom::model(|| {
        let latch = Arc::new(Latch::new(1));
        let l = Arc::clone(&latch);
        let worker = loom::thread::spawn(move || l.complete(Some(Box::new("task boom"))));
        let payload = catch_unwind(AssertUnwindSafe(|| {
            let _handle = ModelHandle::new(Arc::clone(&latch));
            panic!("caller unwinding");
        }))
        .expect_err("the caller's panic must surface");
        assert_eq!(
            *payload.downcast::<&str>().expect("payload type"),
            "caller unwinding"
        );
        assert!(
            latch.is_resolved(),
            "the unwinding drop still joined the task"
        );
        worker.join().unwrap();
    });
}
