//! Property suite for the register-tiled SIMD microkernel and the fused
//! online-ABFT kernel.
//!
//! Two contracts are pinned here:
//!
//! * **bit-identity** — the AVX2 path, the scalar fallback, and every
//!   thread count produce the *same bits* for every transpose combination,
//!   odd/prime shape, strided sub-view, and alpha/beta edge case. This is
//!   what lets the FT driver treat ISA and thread count as pure
//!   performance knobs: checksums, detection thresholds, and reversal
//!   exactness never depend on them.
//! * **detection equivalence** — the fused (encode-in-packing,
//!   verify-in-epilogue) ABFT detector reaches the same verdicts as the
//!   classic separate-pass detector it replaced: standalone checksum
//!   passes before and after the multiply.

use ft_blas::{
    gemm_blocked, gemm_ft_with_inject, gemm_ref, gemm_threaded, gemv, ger, with_backend,
    with_simd_path, AbftInject, AbftOptions, Backend, SimdPath, Trans,
};
use ft_matrix::Matrix;
use proptest::prelude::*;

/// Odd and prime-heavy sides: every microkernel edge case (ragged tile
/// bottoms, partial panels, single rows/columns) appears in this list.
const SIDES: &[usize] = &[1, 2, 3, 5, 7, 8, 11, 13, 17, 23, 31, 37, 41, 53, 61, 67];

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    ft_matrix::random::uniform(rows, cols, seed)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// alpha/beta generator covering the special-cased values and a generic
/// one.
fn scalar() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(1.0),
        Just(-1.0),
        0.25f64..2.0,
        -2.0f64..-0.25,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every (ISA, algorithm, thread count) combination produces the same
    /// bits — including untouched parent-matrix elements around the
    /// strided sub-views, which also proves no out-of-view writes.
    #[test]
    fn gemm_bit_identical_across_isa_and_threads(
        mi in 0usize..SIDES.len(),
        ni in 0usize..SIDES.len(),
        ki in 0usize..SIDES.len(),
        pad in 0usize..3,
        seed in any::<u64>(),
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        alpha in scalar(),
        beta in scalar(),
    ) {
        let (m, n, k) = (SIDES[mi], SIDES[ni], SIDES[ki]);
        let ta = if ta { Trans::Yes } else { Trans::No };
        let tb = if tb { Trans::Yes } else { Trans::No };
        let (ar, ac) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (br, bc) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        // Operands and C live inside larger parents: the views are
        // genuinely strided whenever pad > 0.
        let ap = mat(ar + 2 * pad, ac + pad, seed);
        let bp = mat(br + 2 * pad, bc + pad, seed ^ 1);
        let cp0 = mat(m + 2 * pad, n + pad, seed ^ 2);

        // Baseline: portable scalar path through the reference kernel.
        let mut cb = cp0.clone();
        with_simd_path(SimdPath::Portable, || {
            gemm_ref(
                ta, tb, alpha,
                &ap.view(pad, pad, ar, ac),
                &bp.view(pad, pad, br, bc),
                beta,
                &mut cb.view_mut(pad, pad, m, n),
            );
        });
        let baseline = bits(&cb);

        // `Avx2` silently falls back to the scalar path on CPUs without
        // the features, which is itself part of the contract under test.
        for path in [SimdPath::Portable, SimdPath::Auto, SimdPath::Avx2] {
            for runner in 0..5usize {
                let mut c = cp0.clone();
                with_simd_path(path, || {
                    let av = ap.view(pad, pad, ar, ac);
                    let bv = bp.view(pad, pad, br, bc);
                    let mut cv = c.view_mut(pad, pad, m, n);
                    match runner {
                        0 => gemm_ref(ta, tb, alpha, &av, &bv, beta, &mut cv),
                        1 => gemm_blocked(ta, tb, alpha, &av, &bv, beta, &mut cv),
                        t => gemm_threaded(
                            [1, 2, 4][t - 2], ta, tb, alpha, &av, &bv, beta, &mut cv,
                        ),
                    }
                });
                prop_assert!(
                    bits(&c) == baseline,
                    "bits diverge: path {:?}, runner {}, m={} n={} k={} pad={} ta={:?} tb={:?} α={} β={}",
                    path, runner, m, n, k, pad, ta, tb, alpha, beta
                );
            }
        }
    }

    /// The level-2 kernels (`gemv`, `gemv^T`, `ger`) dispatch through the
    /// same ISA resolution as the microkernel; every (path, backend)
    /// combination must produce the portable serial bits — including the
    /// ragged vector tails the 4-wide AVX2 bodies fall back to scalar for.
    #[test]
    fn level2_bit_identical_across_isa_and_threads(
        mi in 0usize..SIDES.len(),
        ni in 0usize..SIDES.len(),
        pad in 0usize..3,
        seed in any::<u64>(),
        trans in prop::bool::ANY,
        alpha in scalar(),
        beta in scalar(),
    ) {
        let (m, n) = (SIDES[mi], SIDES[ni]);
        let trans = if trans { Trans::Yes } else { Trans::No };
        let (xl, yl) = match trans { Trans::No => (n, m), Trans::Yes => (m, n) };
        let ap = mat(m + 2 * pad, n + pad, seed);
        let x = mat(xl, 1, seed ^ 1).as_slice().to_vec();
        let y0 = mat(yl, 1, seed ^ 2).as_slice().to_vec();
        let gx = mat(m, 1, seed ^ 3).as_slice().to_vec();
        let gy = mat(n, 1, seed ^ 4).as_slice().to_vec();

        // Baseline: portable scalar bodies on the serial backend.
        let (ybase, abase) = with_simd_path(SimdPath::Portable, || {
            with_backend(Backend::Serial, || {
                let mut y = y0.clone();
                gemv(trans, alpha, &ap.view(pad, pad, m, n), &x, beta, &mut y);
                let mut g = ap.clone();
                ger(alpha, &gx, &gy, &mut g.view_mut(pad, pad, m, n));
                (y, g)
            })
        });

        for path in [SimdPath::Portable, SimdPath::Auto, SimdPath::Avx2] {
            for backend in [Backend::Serial, Backend::Threaded(2), Backend::Threaded(4)] {
                let (yv, av) = with_simd_path(path, || {
                    with_backend(backend, || {
                        let mut y = y0.clone();
                        gemv(trans, alpha, &ap.view(pad, pad, m, n), &x, beta, &mut y);
                        let mut g = ap.clone();
                        ger(alpha, &gx, &gy, &mut g.view_mut(pad, pad, m, n));
                        (y, g)
                    })
                });
                prop_assert!(
                    yv.iter().map(|v| v.to_bits()).eq(ybase.iter().map(|v| v.to_bits())),
                    "gemv bits diverge: {:?} {:?} m={} n={} pad={} trans={:?} α={} β={}",
                    path, backend, m, n, pad, trans, alpha, beta
                );
                prop_assert!(
                    bits(&av) == bits(&abase),
                    "ger bits diverge: {:?} {:?} m={} n={} pad={} α={}",
                    path, backend, m, n, pad, alpha
                );
            }
        }
    }

    /// The fused-ABFT kernel's clean-run output is bit-identical to the
    /// plain kernel under every SIMD path (its hard invariant: enabling
    /// protection must not perturb results or checksum aggregates).
    #[test]
    fn fused_abft_clean_runs_bit_identical(
        mi in 0usize..SIDES.len(),
        ni in 0usize..SIDES.len(),
        ki in 0usize..SIDES.len(),
        seed in any::<u64>(),
        alpha in scalar(),
        beta in scalar(),
    ) {
        let (m, n, k) = (SIDES[mi], SIDES[ni], SIDES[ki]);
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 1);
        let c0 = mat(m, n, seed ^ 2);
        let mut plain = c0.clone();
        gemm_blocked(Trans::No, Trans::No, alpha, &a.as_view(), &b.as_view(), beta, &mut plain.as_view_mut());
        for path in [SimdPath::Portable, SimdPath::Auto] {
            let mut c = c0.clone();
            let report = with_simd_path(path, || {
                gemm_ft_with_inject(
                    Trans::No, Trans::No, alpha, &a.as_view(), &b.as_view(), beta,
                    &mut c.as_view_mut(), AbftOptions::default(), &[],
                )
            });
            prop_assert!(report.detected == 0, "clean run flagged under {:?}", path);
            prop_assert!(bits(&c) == bits(&plain), "fused path diverged under {:?}", path);
        }
    }
}

// ---------------------------------------------------------------------
// Detection equivalence: fused online ABFT vs the separate-pass detector.

/// The classic two-pass ABFT detector the fused kernel replaced: column
/// and row checksums computed in standalone passes before the multiply,
/// fresh sums computed in a standalone pass after it, residuals
/// thresholded. Returns the flagged (rows, cols).
#[allow(clippy::too_many_arguments)]
fn separate_pass_detect(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c_before: &Matrix,
    c_after: &Matrix,
    tol: f64,
) -> (Vec<usize>, Vec<usize>) {
    let (m, n) = (c_before.rows(), c_before.cols());
    let k = match ta {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    let opa = |i: usize, p: usize| match ta {
        Trans::No => a[(i, p)],
        Trans::Yes => a[(p, i)],
    };
    let opb = |p: usize, j: usize| match tb {
        Trans::No => b[(p, j)],
        Trans::Yes => b[(j, p)],
    };
    // Pass 1 (before): operand and C checksums.
    let asum: Vec<f64> = (0..k).map(|p| (0..m).map(|i| opa(i, p)).sum()).collect();
    let bsum: Vec<f64> = (0..k).map(|p| (0..n).map(|j| opb(p, j)).sum()).collect();
    let colbase: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| c_before[(i, j)]).sum())
        .collect();
    let rowbase: Vec<f64> = (0..m)
        .map(|i| (0..n).map(|j| c_before[(i, j)]).sum())
        .collect();
    // Pass 2 (after): fresh sums of the stored result.
    let colnew: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| c_after[(i, j)]).sum())
        .collect();
    let rownew: Vec<f64> = (0..m)
        .map(|i| (0..n).map(|j| c_after[(i, j)]).sum())
        .collect();
    // Predicted sums from the operand checksums.
    let colpred: Vec<f64> = (0..n)
        .map(|j| (0..k).map(|p| asum[p] * opb(p, j)).sum())
        .collect();
    let rowpred: Vec<f64> = (0..m)
        .map(|i| (0..k).map(|p| opa(i, p) * bsum[p]).sum())
        .collect();
    let rows: Vec<usize> = (0..m)
        .filter(|&i| (rownew[i] - (beta * rowbase[i] + alpha * rowpred[i])).abs() > tol)
        .collect();
    let cols: Vec<usize> = (0..n)
        .filter(|&j| (colnew[j] - (beta * colbase[j] + alpha * colpred[j])).abs() > tol)
        .collect();
    (rows, cols)
}

/// Runs both detectors on the same injection scenario and checks they
/// agree on the verdict and, for resolvable patterns, the locations.
fn check_equivalence(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
    injections: &[AbftInject],
) {
    let (ar, ac) = match ta {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (br, bc) = match tb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    let a = mat(ar, ac, seed);
    let b = mat(br, bc, seed ^ 1);
    let c0 = mat(m, n, seed ^ 2);
    let (alpha, beta) = (1.0, 1.0);

    // Fused path, correction off so `c_ft` keeps the injected faults.
    let mut c_ft = c0.clone();
    let report = gemm_ft_with_inject(
        ta,
        tb,
        alpha,
        &a.as_view(),
        &b.as_view(),
        beta,
        &mut c_ft.as_view_mut(),
        AbftOptions {
            correct: false,
            ..AbftOptions::default()
        },
        injections,
    );

    // Separate-pass path on the identical corrupted result, reusing the
    // fused run's resolved threshold so the comparison is apples-to-apples.
    let (rows, cols) = separate_pass_detect(ta, tb, alpha, &a, &b, beta, &c0, &c_ft, report.tol);

    assert_eq!(
        report.detected > 0,
        !rows.is_empty() || !cols.is_empty(),
        "detection verdicts disagree: fused {report:?}, separate rows {rows:?} cols {cols:?}"
    );
    if injections.is_empty() {
        assert_eq!(report.detected, 0, "clean run must be clean: {report:?}");
        assert!(rows.is_empty() && cols.is_empty(), "{rows:?} {cols:?}");
        return;
    }
    // Both must flag exactly the injected rows and columns.
    let mut want_rows: Vec<usize> = injections.iter().map(|f| f.row).collect();
    let mut want_cols: Vec<usize> = injections.iter().map(|f| f.col).collect();
    want_rows.sort_unstable();
    want_rows.dedup();
    want_cols.sort_unstable();
    want_cols.dedup();
    assert_eq!(rows, want_rows, "separate-pass rows");
    assert_eq!(cols, want_cols, "separate-pass cols");
    if report.resolved {
        let mut got: Vec<(usize, usize)> = report.errors.iter().map(|e| (e.row, e.col)).collect();
        got.sort_unstable();
        let mut want: Vec<(usize, usize)> = injections.iter().map(|f| (f.row, f.col)).collect();
        want.sort_unstable();
        assert_eq!(got, want, "fused locations: {report:?}");
        for e in &report.errors {
            let inj = injections
                .iter()
                .find(|f| f.row == e.row && f.col == e.col)
                .unwrap();
            assert!(
                (e.delta - inj.delta).abs() < 1e-6 * inj.delta.abs().max(1.0),
                "delta estimate off: got {}, injected {}",
                e.delta,
                inj.delta
            );
        }
    }
}

#[test]
fn fused_detection_matches_separate_pass_single_flip() {
    for &(m, n, k) in &[(90usize, 150usize, 60usize), (61, 61, 61), (8, 300, 16)] {
        check_equivalence(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            m as u64,
            &[AbftInject {
                row: m / 2,
                col: n - 1,
                delta: 0.75,
            }],
        );
    }
}

#[test]
fn fused_detection_matches_separate_pass_scattered_flips() {
    // Distinct rows and columns across different checksum bands.
    check_equivalence(
        Trans::No,
        Trans::No,
        120,
        300,
        50,
        3,
        &[
            AbftInject {
                row: 3,
                col: 7,
                delta: 0.5,
            },
            AbftInject {
                row: 77,
                col: 141,
                delta: -1.25,
            },
            AbftInject {
                row: 50,
                col: 260,
                delta: 2.0,
            },
        ],
    );
}

#[test]
fn fused_detection_matches_separate_pass_transposed_operands() {
    check_equivalence(
        Trans::Yes,
        Trans::Yes,
        70,
        140,
        45,
        11,
        &[AbftInject {
            row: 69,
            col: 130,
            delta: -0.625,
        }],
    );
}

#[test]
fn fused_detection_matches_separate_pass_clean() {
    check_equivalence(Trans::No, Trans::Yes, 64, 200, 32, 21, &[]);
}
