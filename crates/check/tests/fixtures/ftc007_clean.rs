//! FTC007 clean fixture: scalar twin (both by stem and by direct call)
//! plus an `Isa`-guarded dispatcher. Must produce zero findings.

pub enum Isa {
    Scalar,
    Avx2,
}

pub fn widen(isa: Isa, x: &mut [f64]) {
    match isa {
        // SAFETY: Avx2 is only resolved after runtime detection.
        Isa::Avx2 => unsafe { widen_avx2(x) },
        Isa::Scalar => widen_scalar(x),
    }
}

pub fn widen_scalar(x: &mut [f64]) {
    for v in x {
        *v *= 2.0;
    }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller checked the avx2 feature.
pub unsafe fn widen_avx2(x: &mut [f64]) {
    widen_scalar(x);
}
