//! FTC009 fixture: both locks are registered (the driving test supplies
//! the registry), but `bad` acquires them against the declared order.

use std::sync::Mutex;

pub struct Pair {
    pub first: Mutex<u64>,
    pub second: Mutex<u64>,
}

impl Pair {
    pub fn good(&self) -> u64 {
        let a = self.first.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.second.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn bad(&self) -> u64 {
        let b = self.second.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.first.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }
}
