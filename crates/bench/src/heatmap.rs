//! ASCII heat maps of difference matrices — the terminal rendition of the
//! paper's Figure 2 error-propagation plots.

use ft_matrix::Matrix;

/// Renders `|diff|` down-sampled to at most `max_cells × max_cells`
/// characters. Intensity buckets (max |diff| within each character cell):
/// `·` zero/negligible, then `1..9` per decade above `tiny`, `#` huge.
pub fn render_heatmap(diff: &Matrix, max_cells: usize, tiny: f64) -> String {
    let n = diff.rows();
    let m = diff.cols();
    if n == 0 || m == 0 {
        return String::new();
    }
    let step_r = n.div_ceil(max_cells).max(1);
    let step_c = m.div_ceil(max_cells).max(1);
    let mut out = String::new();
    let mut i = 0;
    while i < n {
        let mut j = 0;
        while j < m {
            let mut worst = 0.0f64;
            for ii in i..(i + step_r).min(n) {
                for jj in j..(j + step_c).min(m) {
                    worst = worst.max(diff[(ii, jj)].abs());
                }
            }
            out.push(bucket(worst, tiny));
            j += step_c;
        }
        out.push('\n');
        i += step_r;
    }
    out
}

#[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN renders as '·'
fn bucket(v: f64, tiny: f64) -> char {
    if !(v > tiny) {
        return '·';
    }
    let decades = (v / tiny).log10();
    if decades >= 10.0 {
        '#'
    } else {
        char::from_digit(decades.floor().max(1.0) as u32, 10).unwrap_or('#')
    }
}

/// Counts elements whose |diff| exceeds `tiny` — the "polluted element"
/// metric used to characterize the Figure 2 propagation patterns.
pub fn polluted_count(diff: &Matrix, tiny: f64) -> usize {
    diff.as_slice().iter().filter(|v| v.abs() > tiny).count()
}

/// Number of distinct rows containing at least one polluted element.
pub fn polluted_rows(diff: &Matrix, tiny: f64) -> usize {
    (0..diff.rows())
        .filter(|&i| (0..diff.cols()).any(|j| diff[(i, j)].abs() > tiny))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_spot() {
        let mut d = Matrix::zeros(10, 10);
        d[(3, 4)] = 1.0;
        assert_eq!(polluted_count(&d, 1e-12), 1);
        assert_eq!(polluted_rows(&d, 1e-12), 1);
        let map = render_heatmap(&d, 10, 1e-12);
        assert_eq!(map.matches('·').count(), 99);
    }

    #[test]
    fn row_pattern() {
        let mut d = Matrix::zeros(8, 8);
        for j in 2..8 {
            d[(5, j)] = 0.5;
        }
        assert_eq!(polluted_rows(&d, 1e-12), 1);
        assert_eq!(polluted_count(&d, 1e-12), 6);
    }

    #[test]
    fn downsampling_keeps_shape() {
        let mut d = Matrix::zeros(100, 100);
        d[(0, 0)] = 1.0;
        let map = render_heatmap(&d, 10, 1e-12);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines[0].starts_with(|c: char| c != '·'));
    }

    #[test]
    fn buckets_scale_with_magnitude() {
        assert_eq!(bucket(0.0, 1e-12), '·');
        assert_eq!(bucket(5e-12, 1e-12), '1'); // just above tiny → first decade
        assert_ne!(bucket(1e-10, 1e-12), '·');
        assert_eq!(bucket(1.0, 1e-12), '#');
    }
}
