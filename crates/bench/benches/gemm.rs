//! Criterion bench: GEMM kernel variants (the device workhorse of the
//! trailing-matrix updates), plus the serial-vs-threaded backend
//! comparison behind the `FT_BLAS_BACKEND` knob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_bench::{write_bench_json, Record};
use ft_blas::{gemm, gemm_with_algo, pool, with_backend, Backend, GemmAlgo, Trans};
use ft_matrix::Matrix;
use std::time::Instant;

use ft_bench::smoke;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = ft_matrix::random::uniform(n, n, 1);
        let b = ft_matrix::random::uniform(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for algo in [GemmAlgo::Reference, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            group.bench_with_input(BenchmarkId::new(format!("{algo:?}"), n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm_with_algo(
                        algo,
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut cmat.as_view_mut(),
                    );
                    std::hint::black_box(cmat.as_slice()[0]);
                });
            });
        }
    }
    group.finish();
}

/// Serial vs threaded backend on the default `gemm` entry point. The
/// threaded backend only engages above
/// `ft_blas::backend::PARALLEL_MIN_VOLUME`, so the sizes here are chosen
/// past the gate (the smoke run stays small and fast).
fn bench_gemm_backends(c: &mut Criterion) {
    let mut records: Vec<Record> = Vec::new();
    let mut group = c.benchmark_group("gemm_backend");
    group.sample_size(10);
    let sizes: &[usize] = if smoke() { &[256] } else { &[512, 1024] };
    for &n in sizes {
        let a = ft_matrix::random::uniform(n, n, 1);
        let b = ft_matrix::random::uniform(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for backend in [Backend::Serial, Backend::Threaded(2), Backend::Threaded(4)] {
            let label = match backend {
                Backend::Serial => "serial".to_string(),
                Backend::Threaded(t) => format!("threaded{t}"),
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    with_backend(backend, || {
                        gemm(
                            Trans::No,
                            Trans::No,
                            1.0,
                            &a.as_view(),
                            &b.as_view(),
                            0.0,
                            &mut cmat.as_view_mut(),
                        );
                    });
                    std::hint::black_box(cmat.as_slice()[0]);
                });
            });
        }
        // Headline number: direct wall-clock speedup of Threaded(4) over
        // Serial at this size.
        let iters = if smoke() { 1 } else { 3 };
        let time = |backend: Backend| {
            let mut cmat = Matrix::zeros(n, n);
            let t0 = Instant::now();
            for _ in 0..iters {
                with_backend(backend, || {
                    gemm(
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut cmat.as_view_mut(),
                    );
                });
                std::hint::black_box(cmat.as_slice()[0]);
            }
            t0.elapsed().as_secs_f64() / iters as f64
        };
        let ts = time(Backend::Serial);
        let tt = time(Backend::Threaded(4));
        println!(
            "gemm backend speedup @ n={n}: serial {:.1} ms, threaded(4) {:.1} ms -> {:.2}x",
            ts * 1e3,
            tt * 1e3,
            ts / tt
        );
        let gflops = |secs: f64| 2.0 * (n as f64).powi(3) / secs / 1e9;
        records.push(
            Record::new()
                .str("kind", "gemm_backend")
                .int("n", n as u64)
                .num("serial_ms", ts * 1e3)
                .num("threaded4_ms", tt * 1e3)
                .num("speedup", ts / tt)
                .num("serial_gflops", gflops(ts))
                .num("threaded4_gflops", gflops(tt))
                .bool("smoke", smoke()),
        );
    }
    group.finish();

    records.push(dispatch_overhead_record());
    write_bench_json("gemm", &records);
}

/// Measures the pool's per-kernel dispatch overhead against the per-call
/// `std::thread::scope` spawn/join cycle it replaced, driving the public
/// `ft_blas::parallel_map_into` fan-out (the same path the FT driver's
/// checksum refreshes take) rather than ad-hoc probes. Also proves pool
/// reuse: the spawned-thread count must not move across thousands of
/// dispatches — both counters now live in the `ft_trace` registry.
fn dispatch_overhead_record() -> Record {
    const TASKS: usize = 4;
    // 256² = 65536 "reads" clears the memory-bound fork gate
    // (`PARALLEL_MIN_ELEMS`), so every call genuinely dispatches
    // `TASKS` chunks onto the pool.
    const LEN: usize = 256;
    let reps: u32 = if smoke() { 2_000 } else { 20_000 };
    let mut buf = vec![0.0f64; LEN];
    // Warm the pool so the measurement excludes one-time thread creation.
    with_backend(Backend::Threaded(TASKS), || {
        ft_blas::parallel_map_into(&mut buf, |i| i as f64);
    });
    let spawned_before = pool::spawned_worker_count();
    let dispatches_before = pool::dispatch_count();

    let t0 = Instant::now();
    with_backend(Backend::Threaded(TASKS), || {
        for _ in 0..reps {
            ft_blas::parallel_map_into(&mut buf, |i| i as f64);
        }
    });
    let pool_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
    std::hint::black_box(buf[LEN - 1]);

    // Baseline: the pre-pool implementation — a fresh spawn/join cycle
    // per call doing the identical chunked fill.
    let t0 = Instant::now();
    for _ in 0..reps {
        let chunk = LEN.div_ceil(TASKS);
        std::thread::scope(|s| {
            for (ci, block) in buf.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                s.spawn(move || {
                    for (off, slot) in block.iter_mut().enumerate() {
                        *slot = (base + off) as f64;
                    }
                });
            }
        });
    }
    let spawn_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
    std::hint::black_box(buf[LEN - 1]);

    let spawned_after = pool::spawned_worker_count();
    println!(
        "pool dispatch ({TASKS} tasks): {pool_ns:.0} ns/call vs thread::scope spawn {spawn_ns:.0} \
         ns/call -> {:.1}x cheaper; {} worker threads total (unchanged across {reps} calls: {})",
        spawn_ns / pool_ns,
        spawned_after,
        spawned_after == spawned_before,
    );
    Record::new()
        .str("kind", "dispatch_overhead")
        .int("tasks_per_call", TASKS as u64)
        .int("reps", reps as u64)
        .num("pool_dispatch_ns_per_call", pool_ns)
        .num("thread_scope_spawn_ns_per_call", spawn_ns)
        .num("spawn_over_dispatch", spawn_ns / pool_ns)
        .int("pool_threads", spawned_after as u64)
        .bool(
            "no_spawn_during_measurement",
            spawned_after == spawned_before,
        )
        .int(
            "dispatched_tasks",
            pool::dispatch_count() - dispatches_before,
        )
        .bool("smoke", smoke())
}

criterion_group!(benches, bench_gemm, bench_gemm_backends);
criterion_main!(benches);
