//! Table II — numerical stability: `‖A − QHQᵀ‖₁ / (N‖A‖₁)` for the
//! original (MAGMA-style) hybrid algorithm and the fault-tolerant
//! algorithm with one soft error injected in Area 1/2/3 at the
//! Beginning / Middle / End of the factorization.
//!
//! Default sizes are scaled for real arithmetic on one core; pass
//! `--full` for the paper's N = 1022 … 10110 (slow) or `--sizes`.

use ft_bench::stability::run_stability;
use ft_bench::{paper_sizes, scaled_sizes, sci, Args, Table};

fn main() {
    let args = Args::from_env();
    let nb = args.nb.unwrap_or(32);
    let sizes = args.sizes.clone().unwrap_or_else(|| {
        if args.full {
            paper_sizes()
        } else {
            scaled_sizes()
        }
    });

    println!("Table II — numerical stability (‖A − QHQᵀ‖₁ / (N‖A‖₁)), nb = {nb}\n");
    let mut t = Table::new(vec![
        "Matrix Size",
        "MAGMA Hess",
        "FT-Hess B (A1)",
        "FT-Hess M (A1)",
        "FT-Hess E (A1)",
        "FT-Hess B (A2)",
        "FT-Hess M (A2)",
        "FT-Hess E (A2)",
        "FT-Hess B/M/E (A3)",
    ]);

    for &n in &sizes {
        let row = run_stability(n, nb, args.seed + n as u64);
        let cell = |a: usize, m: usize| -> String {
            row.cells[a][m]
                .map(|r| sci(r.factorization))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            n.to_string(),
            sci(row.magma.factorization),
            cell(0, 0),
            cell(0, 1),
            cell(0, 2),
            cell(1, 0),
            cell(1, 1),
            cell(1, 2),
            cell(2, 0),
        ]);
        eprintln!("  done N = {n} ({} recovery events)", row.recoveries);
    }
    println!("{}", t.render());
    println!(
        "\nPaper's pattern: Areas 1/2 match MAGMA to the digit (~1e-17/-18);\n\
         Area 3 is ~100–1000× larger (encode/recover dot-product rounding) but acceptable."
    );
}
