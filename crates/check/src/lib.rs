#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `ft-check`: project-invariant lints for the FT-Hess workspace.
//!
//! The runtime under the FT guarantee is a hand-rolled concurrency stack
//! whose invariants are conventions — env knobs live in
//! `ft_trace::env_knob`, threads come only from the `ft-blas` pool,
//! `unsafe` is justified in writing, deterministic math crates never read
//! wall clocks, and metric names come from one declared registry. This
//! crate turns those conventions into machine-checked, deny-by-default
//! rules (run `cargo run -p ft-check`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | FTC000 | every `check_allow.toml` entry still matches something |
//! | FTC001 | no `std::env::var` outside `ft_trace::env_knob` |
//! | FTC002 | no `thread::spawn`/`scope`/`Builder` outside the pool |
//! | FTC003 | every `unsafe` is annotated with `SAFETY`/`# Safety` |
//! | FTC004 | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | FTC005 | no `Instant::now`/`SystemTime` in deterministic math crates |
//! | FTC006 | counter/gauge/histogram/span name literals appear in `names.rs` |
//!
//! The scanner is deliberately not a full parser: it strips comments and
//! literals with a small state machine, tracks `#[cfg(test)]` regions by
//! brace depth, and matches tokens at identifier boundaries. That is
//! exact enough for these rules (the workspace is the test: see
//! `tests/clean_tree.rs`) and keeps the tool dependency-free.
//!
//! Known escapes are recorded in `check_allow.toml` at the repo root:
//! every entry names a rule, a file, and an audit reason, and may cap the
//! number of matches it excuses (`max`). Stale entries fail the run
//! (FTC000) so the allowlist can only shrink by itself.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation (or allowlist-hygiene failure).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule ID (`FTC000`–`FTC006`).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}\n    hint: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// The declared metric-name registry, parsed from
/// `crates/trace/src/names.rs`.
#[derive(Debug, Default)]
pub struct Registry {
    /// Declared counter names.
    pub counters: BTreeSet<String>,
    /// Declared gauge names.
    pub gauges: BTreeSet<String>,
    /// Declared histogram names.
    pub histograms: BTreeSet<String>,
    /// Declared span names.
    pub spans: BTreeSet<String>,
}

/// One audited `[[allow]]` entry from `check_allow.toml`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ID the entry excuses.
    pub rule: String,
    /// Repo-relative file the entry applies to.
    pub path: String,
    /// Why the escape is sound (required; this is the audit).
    pub reason: String,
    /// Maximum matches excused (entries beyond it are reported).
    pub max: usize,
    /// Line of the `[[allow]]` header, for FTC000 reports.
    pub line: usize,
}

// ---------------------------------------------------------------------------
// Source stripping
// ---------------------------------------------------------------------------

/// Source text with comments and literal *contents* blanked (structure —
/// newlines, quote positions — preserved), plus the extracted string
/// literals keyed by position.
struct Stripped {
    /// Code-only lines: comments and literal contents become spaces.
    code: Vec<String>,
    /// String literals: (0-based line, column of the opening quote,
    /// contents). Raw strings are blanked but not recorded.
    literals: Vec<(usize, usize, String)>,
}

fn strip(source: &str) -> Stripped {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str { byte_esc: bool },
        RawStr(u32),
        CharLit,
    }
    let chars: Vec<char> = source.chars().collect();
    let mut st = St::Code;
    let mut out = String::with_capacity(source.len());
    let mut literals = Vec::new();
    let mut lit_buf = String::new();
    let mut lit_start = (0usize, 0usize);
    let mut line = 0usize;
    let mut col = 0usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => {
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                    col += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    col += 2;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, br"…", br#"…"# — blanked,
                // not recorded (no metric name lives in a raw string).
                let raw_from = if c == 'r' && !prev_is_ident(&chars, i) {
                    Some(i + 1)
                } else if c == 'b' && next == Some('r') && !prev_is_ident(&chars, i) {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(mut j) = raw_from {
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                            col += 1;
                        }
                        i = j + 1;
                        st = St::RawStr(hashes);
                        continue;
                    }
                }
                if c == '"' || (c == 'b' && next == Some('"')) {
                    if c == 'b' {
                        out.push(' ');
                        i += 1;
                        col += 1;
                    }
                    lit_start = (line, col);
                    lit_buf.clear();
                    out.push('"');
                    st = St::Str { byte_esc: false };
                    i += 1;
                    col += 1;
                    continue;
                }
                if c == '\'' && !prev_is_ident(&chars, i) {
                    // Char literal vs lifetime: a char literal closes with
                    // a quote after one (possibly escaped) character.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        out.push(' ');
                        st = St::CharLit;
                        i += 1;
                        col += 1;
                        continue;
                    }
                }
                out.push(c);
                i += 1;
                if c == '\n' {
                    line += 1;
                    col = 0;
                } else {
                    col += 1;
                }
            }
            St::LineComment => {
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                    col = 0;
                    st = St::Code;
                } else {
                    out.push(' ');
                    col += 1;
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                    col += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                    col += 2;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                        col = 0;
                    } else {
                        out.push(' ');
                        col += 1;
                    }
                    i += 1;
                }
            }
            St::Str { byte_esc } => {
                if byte_esc {
                    lit_buf.push(c);
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    if c == '\n' {
                        line += 1;
                        col = 0;
                    } else {
                        col += 1;
                    }
                    st = St::Str { byte_esc: false };
                    i += 1;
                } else if c == '\\' {
                    lit_buf.push(c);
                    out.push(' ');
                    col += 1;
                    st = St::Str { byte_esc: true };
                    i += 1;
                } else if c == '"' {
                    literals.push((lit_start.0, lit_start.1, lit_buf.clone()));
                    out.push('"');
                    col += 1;
                    st = St::Code;
                    i += 1;
                } else {
                    lit_buf.push(c);
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                        col = 0;
                    } else {
                        out.push(' ');
                        col += 1;
                    }
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            out.push(' ');
                            col += 1;
                        }
                        i += 1 + hashes as usize;
                        st = St::Code;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                    col = 0;
                } else {
                    out.push(' ');
                    col += 1;
                }
                i += 1;
            }
            St::CharLit => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                    col += 2;
                } else if c == '\'' {
                    out.push(' ');
                    col += 1;
                    st = St::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    col += 1;
                    i += 1;
                }
            }
        }
    }
    Stripped {
        code: out.lines().map(str::to_string).collect(),
        literals,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident(chars[i - 1])
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Positions (0-based columns) where `tok` occurs in `line` bounded by
/// non-identifier characters. Multi-segment tokens (`env::var`) work
/// because `:` is not an identifier character.
fn find_token(line: &str, tok: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let bytes = line.as_bytes();
    let tlen = tok.len();
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let first = tok.as_bytes()[0] as char;
        let before_ok = before_ok && !(is_ident(first) && at > 0 && bytes[at - 1] == b':');
        let after_ok = at + tlen >= bytes.len() || !is_ident(bytes[at + tlen] as char);
        // `::token` is still a match (paths); only identifier adjacency
        // disqualifies. Re-allow the `:` prefix.
        let before_ok = before_ok || (at >= 2 && &line[at - 2..at] == "::");
        if before_ok && after_ok {
            found.push(at);
        }
        from = at + tlen;
    }
    found
}

// ---------------------------------------------------------------------------
// Test-region tracking
// ---------------------------------------------------------------------------

/// Marks lines inside `#[cfg(test)]`-gated items (by brace depth).
fn test_line_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        // `#[cfg(test)]` or any `cfg(all(test, …))` combination — but not
        // `cfg(not(test))`. `feature = "test"` cannot confuse this: literal
        // contents are already blanked in `code`.
        let gated = code[i].contains("#[cfg(")
            && !find_token(&code[i], "test").is_empty()
            && !code[i].contains("not(test)");
        if !gated {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut started = false;
        let mut j = i;
        while j < code.len() {
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            mask[j] = true;
            if started && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Scope classification
// ---------------------------------------------------------------------------

/// Crates whose `src/` must stay wall-clock-free (bit-identical math).
const DETERMINISTIC_CRATES: [&str; 4] = [
    "crates/matrix/src/",
    "crates/blas/src/",
    "crates/lapack/src/",
    "crates/hessenberg/src/",
];

/// The one sanctioned `std::env::var` site.
const ENV_KNOB: &str = "crates/trace/src/env_knob.rs";

/// The one sanctioned thread-creation site.
const POOL: &str = "crates/blas/src/pool.rs";

fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

fn is_library_path(rel: &str) -> bool {
    let in_src = rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    in_src && !rel.contains("/bin/") && !rel.ends_with("/main.rs") && !rel.ends_with("build.rs")
}

fn is_deterministic_math_path(rel: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|p| rel.starts_with(p))
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

/// Scans one file's source, returning its findings (allowlist not yet
/// applied). `rel` is the repo-relative path and decides rule scope.
pub fn scan_source(rel: &str, source: &str, registry: &Registry) -> Vec<Finding> {
    let stripped = strip(source);
    let originals: Vec<&str> = source.lines().collect();
    let test_mask = test_line_mask(&stripped.code);
    let file_is_test = is_test_path(rel);
    let in_test = |idx: usize| file_is_test || test_mask.get(idx).copied().unwrap_or(false);
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String, hint: &'static str| {
        findings.push(Finding {
            path: rel.to_string(),
            line: line + 1,
            rule,
            message,
            hint,
        });
    };

    for (idx, code) in stripped.code.iter().enumerate() {
        // FTC001 — env access outside the knob module (non-test code).
        if rel != ENV_KNOB && !in_test(idx) {
            for tok in ["env::var", "env::var_os", "env::vars"] {
                if !find_token(code, tok).is_empty() {
                    push(
                        idx,
                        "FTC001",
                        format!("`{tok}` outside `ft_trace::env_knob`"),
                        "read configuration through ft_trace::env_knob so every knob \
                         is centralized, documented, and trace-consistent",
                    );
                }
            }
        }

        // FTC002 — thread creation outside the pool (non-test code).
        if rel != POOL && !in_test(idx) {
            for tok in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if !find_token(code, tok).is_empty() {
                    push(
                        idx,
                        "FTC002",
                        format!("`{tok}` outside `ft-blas/src/pool.rs`"),
                        "run work on the persistent ft-blas pool, or audit the new \
                         thread with a check_allow.toml entry",
                    );
                }
            }
        }

        // FTC003 — unannotated unsafe (all code, tests included).
        if !find_token(code, "unsafe").is_empty() && !has_safety_annotation(&originals, idx) {
            push(
                idx,
                "FTC003",
                "`unsafe` without a `// SAFETY:` comment".to_string(),
                "state the proof obligation discharged by this unsafe in a \
                 SAFETY comment directly above it (or a `# Safety` doc section)",
            );
        }

        // FTC004 — panicking calls in non-test library code.
        if is_library_path(rel) && !in_test(idx) {
            for (tok, needs_bang) in [("unwrap", false), ("expect", false), ("panic", true)] {
                for at in find_token(code, tok) {
                    let after = &code[at + tok.len()..];
                    if needs_bang != after.starts_with('!') {
                        continue;
                    }
                    push(
                        idx,
                        "FTC004",
                        format!(
                            "`{tok}{}` in non-test library code",
                            if needs_bang { "!" } else { "()" }
                        ),
                        "return a Result, degrade gracefully, or audit the abort \
                         with a check_allow.toml entry",
                    );
                    break; // one finding per token kind per line
                }
            }
        }

        // FTC005 — wall clocks in deterministic math crates (non-test).
        if is_deterministic_math_path(rel) && !in_test(idx) {
            for tok in ["Instant::now", "SystemTime"] {
                if !find_token(code, tok).is_empty() {
                    push(
                        idx,
                        "FTC005",
                        format!("`{tok}` in a deterministic math crate"),
                        "math crates must stay replayable: take timings through \
                         ft_trace (spans or ft_trace::clock) at the call boundary",
                    );
                }
            }
        }

        // FTC006 — metric/span names must be declared (non-test code).
        if !in_test(idx) {
            for (tok, is_macro, set, kind) in [
                ("counter", false, &registry.counters, "counter"),
                ("gauge", false, &registry.gauges, "gauge"),
                ("histogram", false, &registry.histograms, "histogram"),
                ("span", true, &registry.spans, "span"),
            ] {
                for at in find_token(code, tok) {
                    let Some(name) =
                        call_name_literal(code, &stripped.literals, idx, at + tok.len(), is_macro)
                    else {
                        continue;
                    };
                    if !set.contains(&name) {
                        push(
                            idx,
                            "FTC006",
                            format!("{kind} name \"{name}\" is not declared in the registry"),
                            "declare the name in crates/trace/src/names.rs (typo'd \
                             names silently report zero)",
                        );
                    }
                }
            }
        }
    }
    findings
}

/// For a `counter(`/`gauge(`/`span!(` token ending at `after`, returns
/// the string literal opening the argument list on the same line.
fn call_name_literal(
    code: &str,
    literals: &[(usize, usize, String)],
    line: usize,
    mut after: usize,
    is_macro: bool,
) -> Option<String> {
    let bytes = code.as_bytes();
    if is_macro {
        if bytes.get(after) != Some(&b'!') {
            return None;
        }
        after += 1;
    }
    while bytes.get(after) == Some(&b' ') {
        after += 1;
    }
    if bytes.get(after) != Some(&b'(') {
        return None;
    }
    after += 1;
    while bytes.get(after) == Some(&b' ') {
        after += 1;
    }
    if bytes.get(after) != Some(&b'"') {
        return None;
    }
    literals
        .iter()
        .find(|(l, c, _)| *l == line && *c == after)
        .map(|(_, _, s)| s.clone())
}

/// `true` when the contiguous comment/attribute block above `idx` (or the
/// original line itself) carries a SAFETY annotation.
fn has_safety_annotation(originals: &[&str], idx: usize) -> bool {
    let carries = |s: &str| s.contains("SAFETY") || s.contains("# Safety");
    if originals.get(idx).is_some_and(|l| carries(l)) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = originals[j].trim_start();
        if t.is_empty() || t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
            if carries(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Registry parsing
// ---------------------------------------------------------------------------

/// Parses `crates/trace/src/names.rs`: the string literals of the
/// `COUNTERS`, `GAUGES`, `HISTOGRAMS`, and `SPANS` const slices.
pub fn parse_registry(source: &str) -> Registry {
    let stripped = strip(source);
    let mut reg = Registry::default();
    let mut section: Option<u8> = None;
    let mut bounds = [None, None, None, None]; // start line per section
    let mut ends = [usize::MAX; 4];
    for (idx, code) in stripped.code.iter().enumerate() {
        for (s, name) in [
            (0u8, "COUNTERS"),
            (1, "GAUGES"),
            (2, "HISTOGRAMS"),
            (3, "SPANS"),
        ] {
            if !find_token(code, name).is_empty() && code.contains('=') {
                section = Some(s);
                bounds[s as usize] = Some(idx);
            }
        }
        if let Some(s) = section {
            if code.contains("];") {
                ends[s as usize] = idx;
                section = None;
            }
        }
    }
    for (l, _c, lit) in &stripped.literals {
        for s in 0..4usize {
            if let Some(start) = bounds[s] {
                if *l >= start && *l <= ends[s] {
                    let set = match s {
                        0 => &mut reg.counters,
                        1 => &mut reg.gauges,
                        2 => &mut reg.histograms,
                        _ => &mut reg.spans,
                    };
                    set.insert(lit.clone());
                }
            }
        }
    }
    reg
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// Parses the minimal TOML dialect of `check_allow.toml`: `[[allow]]`
/// tables with `rule`/`path`/`reason` strings and an optional integer
/// `max`.
pub fn parse_allowlist(text: &str) -> Result<Vec<Allow>, String> {
    let mut entries: Vec<Allow> = Vec::new();
    let mut current: Option<Allow> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(validate_entry(e)?);
            }
            current = Some(Allow {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
                max: usize::MAX,
                line: idx + 1,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "check_allow.toml:{}: expected `key = value`",
                idx + 1
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "check_allow.toml:{}: key outside an [[allow]] table",
                idx + 1
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let as_string = |v: &str| -> Result<String, String> {
            let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
            v.map(str::to_string)
                .ok_or_else(|| format!("check_allow.toml:{}: expected a quoted string", idx + 1))
        };
        match key {
            "rule" => entry.rule = as_string(value)?,
            "path" => entry.path = as_string(value)?,
            "reason" => entry.reason = as_string(value)?,
            "max" => {
                entry.max = value.parse().map_err(|_| {
                    format!("check_allow.toml:{}: `max` must be an integer", idx + 1)
                })?;
            }
            other => {
                return Err(format!(
                    "check_allow.toml:{}: unknown key `{other}`",
                    idx + 1
                ));
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(validate_entry(e)?);
    }
    Ok(entries)
}

fn validate_entry(e: Allow) -> Result<Allow, String> {
    if e.rule.is_empty() || e.path.is_empty() {
        return Err(format!(
            "check_allow.toml:{}: entry needs both `rule` and `path`",
            e.line
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "check_allow.toml:{}: entry needs a non-empty `reason` (that is the audit)",
            e.line
        ));
    }
    Ok(e)
}

/// Suppresses findings covered by the allowlist. Entries that matched
/// nothing, or whose `max` was exceeded, produce findings of their own.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &[Allow]) -> Vec<Finding> {
    let mut used = vec![0usize; allow.len()];
    let mut out = Vec::new();
    for f in findings {
        let slot = allow
            .iter()
            .position(|a| a.rule == f.rule && a.path == f.path);
        match slot {
            Some(i) if used[i] < allow[i].max => used[i] += 1,
            _ => out.push(f),
        }
    }
    for (i, a) in allow.iter().enumerate() {
        if used[i] == 0 {
            out.push(Finding {
                path: "check_allow.toml".to_string(),
                line: a.line,
                rule: "FTC000",
                message: format!(
                    "stale allowlist entry: {} on {} matched nothing",
                    a.rule, a.path
                ),
                hint: "delete the entry — the allowlist must only shrink by itself",
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Directory names never scanned.
const SKIP_DIRS: [&str; 3] = [".git", "target", "vendor"];

/// Repo-relative prefixes never scanned (rule fixtures violate rules on
/// purpose).
const SKIP_PREFIXES: [&str; 1] = ["crates/check/tests/fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = relative(root, &path);
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if SKIP_DIRS.contains(&name.as_ref()) || SKIP_PREFIXES.contains(&rel.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans the whole workspace under `root`, applying the allowlist and the
/// name registry. Returns findings sorted by path and line.
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let names_path = root.join("crates/trace/src/names.rs");
    let registry = match std::fs::read_to_string(&names_path) {
        Ok(src) => parse_registry(&src),
        Err(e) => return Err(format!("cannot read {}: {e}", names_path.display())),
    };
    let allow = match std::fs::read_to_string(root.join("check_allow.toml")) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        findings.extend(scan_source(&relative(root, path), &source, &registry));
    }
    let mut findings = apply_allowlist(findings, &allow);
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// The number of files the last scan would cover (for reporting).
pub fn count_scanned_files(root: &Path) -> usize {
    let mut files = Vec::new();
    let _ = collect_rs_files(root, root, &mut files);
    files.len()
}
