//! Fixture: exactly one FTC003 violation (bare unsafe) on line 6.

/// Dereferences a raw pointer without stating the proof obligation.
pub fn read_raw(p: *const f64) -> f64 {
    let value =
        unsafe { *p };
    value
}
