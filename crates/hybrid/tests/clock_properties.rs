//! Property-based tests of the simulated platform's clock algebra — the
//! invariants every discrete-event schedule must satisfy, independent of
//! the particular op sequence.

use ft_hybrid::{CostModel, ExecMode, HybridCtx, OpClass, StreamId, Work};
use proptest::prelude::*;

/// A random operation for the schedule generator.
#[derive(Clone, Debug)]
enum Op {
    Host(f64),
    Device(usize, f64),
    H2d(usize, usize),
    D2h(usize, usize),
    SyncStream(usize),
    SyncAll,
    Wait(usize, usize),
}

fn op_strategy(nstreams: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.1f64..50.0).prop_map(Op::Host),
        (0..nstreams, 0.1f64..50.0).prop_map(|(s, w)| Op::Device(s, w)),
        (0..nstreams, 1usize..1000).prop_map(|(s, b)| Op::H2d(s, b)),
        (0..nstreams, 1usize..1000).prop_map(|(s, b)| Op::D2h(s, b)),
        (0..nstreams).prop_map(Op::SyncStream),
        Just(Op::SyncAll),
        (0..nstreams, 0..nstreams).prop_map(|(a, b)| Op::Wait(a, b)),
    ]
}

fn run_schedule(ops: &[Op], nstreams: usize) -> HybridCtx {
    let mut ctx = HybridCtx::new(CostModel::unit_test_model(), ExecMode::TimingOnly, nstreams);
    for op in ops {
        match *op {
            Op::Host(w) => {
                ctx.host(OpClass::HostPanel, Work::Flops(w), || ());
            }
            Op::Device(s, w) => {
                ctx.device(StreamId(s), OpClass::DeviceGemm, Work::Flops(w), || ());
            }
            Op::H2d(s, b) => {
                ctx.h2d(StreamId(s), b, || ());
            }
            Op::D2h(s, b) => {
                ctx.d2h(StreamId(s), b, || ());
            }
            Op::SyncStream(s) => ctx.sync_stream(StreamId(s)),
            Op::SyncAll => ctx.sync_all(),
            Op::Wait(a, b) => ctx.stream_wait_stream(StreamId(a), StreamId(b)),
        }
    }
    ctx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The makespan is bounded below by every single resource's busy time
    /// and above by the sum of all busy time (no time machine, no lost
    /// work).
    #[test]
    fn makespan_bounds(ops in prop::collection::vec(op_strategy(3), 1..60)) {
        let ctx = run_schedule(&ops, 3);
        let stats = ctx.stats();
        let makespan = ctx.elapsed();
        let slack = 1e-9;
        prop_assert!(makespan + slack >= stats.host_busy, "{makespan} < host {}", stats.host_busy);
        prop_assert!(makespan + slack >= stats.link_busy);
        prop_assert!(makespan <= stats.total_busy() + slack,
            "makespan {makespan} > total busy {}", stats.total_busy());
    }

    /// Clocks are monotone: running a prefix never yields a later
    /// makespan than the full schedule.
    #[test]
    fn makespan_monotone_in_schedule_prefix(ops in prop::collection::vec(op_strategy(2), 2..40)) {
        let cut = ops.len() / 2;
        let partial = run_schedule(&ops[..cut], 2).elapsed();
        let full = run_schedule(&ops, 2).elapsed();
        prop_assert!(full + 1e-12 >= partial, "{full} < {partial}");
    }

    /// Scaling every device op's work up never reduces the makespan.
    #[test]
    fn makespan_monotone_in_work(ops in prop::collection::vec(op_strategy(2), 1..40)) {
        let base = run_schedule(&ops, 2).elapsed();
        let heavier: Vec<Op> = ops
            .iter()
            .map(|op| match *op {
                Op::Device(s, w) => Op::Device(s, w * 2.0),
                Op::Host(w) => Op::Host(w * 2.0),
                ref other => other.clone(),
            })
            .collect();
        let heavy = run_schedule(&heavier, 2).elapsed();
        prop_assert!(heavy + 1e-12 >= base, "{heavy} < {base}");
    }

    /// sync_all is idempotent and pins the host clock to the makespan.
    #[test]
    fn sync_all_pins_host(ops in prop::collection::vec(op_strategy(2), 1..40)) {
        let mut ctx = run_schedule(&ops, 2);
        ctx.sync_all();
        prop_assert!((ctx.host_time() - ctx.elapsed()).abs() < 1e-12);
        let before = ctx.elapsed();
        ctx.sync_all();
        prop_assert_eq!(ctx.elapsed(), before);
    }

    /// Mode never changes timing: TimingOnly and Full agree on every
    /// schedule (closures here are empty, so Full is cheap to run).
    #[test]
    fn mode_independence(ops in prop::collection::vec(op_strategy(2), 1..40)) {
        let t1 = run_schedule(&ops, 2).elapsed();
        let mut ctx = HybridCtx::new(CostModel::unit_test_model(), ExecMode::Full, 2);
        for op in &ops {
            match *op {
                Op::Host(w) => {
                    ctx.host(OpClass::HostPanel, Work::Flops(w), || ());
                }
                Op::Device(s, w) => {
                    ctx.device(StreamId(s), OpClass::DeviceGemm, Work::Flops(w), || ());
                }
                Op::H2d(s, b) => {
                    ctx.h2d(StreamId(s), b, || ());
                }
                Op::D2h(s, b) => {
                    ctx.d2h(StreamId(s), b, || ());
                }
                Op::SyncStream(s) => ctx.sync_stream(StreamId(s)),
                Op::SyncAll => ctx.sync_all(),
                Op::Wait(a, b) => ctx.stream_wait_stream(StreamId(a), StreamId(b)),
            }
        }
        prop_assert!((ctx.elapsed() - t1).abs() < 1e-12);
    }
}
