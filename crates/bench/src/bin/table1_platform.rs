//! Table I — test platform specification.
//!
//! The paper's testbed is physical hardware; this reproduction substitutes
//! a calibrated cost model (see DESIGN.md §2). This binary prints the
//! paper's Table I next to the simulated platform parameters so every
//! other experiment's GFLOP/s numbers can be interpreted.

use ft_bench::Table;
use ft_hybrid::CostModel;

fn main() {
    let m = CostModel::k40c_sandy_bridge();
    println!("Table I — detailed specification of the (simulated) test platform\n");

    let mut t = Table::new(vec!["", "CPU (paper)", "GPU (paper)", "simulated model"]);
    t.row(vec![
        "Processor model",
        "Intel Xeon E5-2670",
        "NVIDIA Tesla K40c",
        m.name,
    ]);
    t.row(vec!["Clock frequency", "2.6 GHz", "745 MHz", "-"]);
    t.row(vec!["Memory", "62 GB", "11.5 GB", "host RAM"]);
    t.row(vec![
        "Peak DP",
        "10.4 Gflop/s",
        "1.43 Tflop/s",
        &format!(
            "panel {} Gflop/s | GEMM {} Gflop/s",
            m.host_panel_gflops, m.device_gemm_gflops
        ),
    ]);
    t.row(vec![
        "BLAS/LAPACK",
        "Intel MKL 11.2",
        "CUBLAS 7.0.28",
        "ft-blas / ft-lapack (this repo)",
    ]);
    t.row(vec![
        "OS / compiler",
        "CentOS 6.4, gcc 4.4.7",
        "nvcc 7.0",
        "rustc (host)",
    ]);
    print!("{}", t.render());

    println!("\nSimulated cost-model parameters:");
    let mut p = Table::new(vec!["parameter", "value"]);
    p.row(vec![
        "host panel throughput",
        &format!("{} Gflop/s", m.host_panel_gflops),
    ]);
    p.row(vec![
        "host vector throughput",
        &format!("{} Gflop/s", m.host_vector_gflops),
    ]);
    p.row(vec![
        "host GEMM throughput",
        &format!("{} Gflop/s", m.host_gemm_gflops),
    ]);
    p.row(vec![
        "device GEMM (sustained)",
        &format!("{} Gflop/s", m.device_gemm_gflops),
    ]);
    p.row(vec![
        "device bandwidth",
        &format!("{:.0} GB/s", m.device_bandwidth_gbs),
    ]);
    p.row(vec![
        "PCIe bandwidth",
        &format!("{} GB/s", m.link_bandwidth_gbs),
    ]);
    p.row(vec![
        "PCIe latency",
        &format!("{} us", m.link_latency_s * 1e6),
    ]);
    p.row(vec![
        "kernel launch latency",
        &format!("{} us", m.kernel_latency_s * 1e6),
    ]);
    print!("{}", p.render());
}
