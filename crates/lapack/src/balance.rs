//! Matrix balancing (LAPACK `DGEBAL`, scaling variant): a diagonal
//! similarity `A ← D⁻¹·A·D` with power-of-two `D` that equalizes row and
//! column norms. Eigenvalues are exactly preserved (powers of two are
//! exact in binary floating point); eigenvector back-transformation is
//! `v = D·y`. Balancing can improve the accuracy of the QR iteration by
//! orders of magnitude on badly scaled inputs.

use ft_matrix::Matrix;

const RADIX: f64 = 2.0;

/// The scaling produced by [`balance`]; apply [`Balance::back_transform`]
/// to eigenvectors computed from the balanced matrix.
#[derive(Clone, Debug)]
pub struct Balance {
    /// Diagonal of `D` (all powers of two).
    pub scale: Vec<f64>,
    /// Number of full sweeps performed until convergence.
    pub sweeps: usize,
}

impl Balance {
    /// Maps an eigenvector of the balanced matrix back to one of the
    /// original matrix (`v = D·y`), renormalized to unit length.
    pub fn back_transform(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.scale.len(), "back_transform: length mismatch");
        let mut v: Vec<f64> = y.iter().zip(&self.scale).map(|(yi, d)| yi * d).collect();
        let norm = ft_blas::nrm2(&v);
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

/// Balances `a` in place. Returns the applied scaling.
pub fn balance(a: &mut Matrix) -> Balance {
    assert!(a.is_square(), "balance: matrix must be square");
    let n = a.rows();
    let mut scale = vec![1.0f64; n];
    let sfmin = f64::MIN_POSITIVE / f64::EPSILON;
    let sfmax = 1.0 / sfmin;

    let mut sweeps = 0;
    loop {
        let mut converged = true;
        for i in 0..n {
            // Off-diagonal column and row 1-norms.
            let mut c = 0.0f64;
            let mut r = 0.0f64;
            for j in 0..n {
                if j != i {
                    c += a[(j, i)].abs();
                    r += a[(i, j)].abs();
                }
            }
            if c == 0.0 || r == 0.0 {
                continue; // isolated in one direction; leave it
            }
            let mut f = 1.0f64;
            let s = c + r;
            let mut cc = c;
            let mut g = r / RADIX;
            while cc < g {
                if f > sfmax / RADIX || cc > sfmax / RADIX {
                    break;
                }
                f *= RADIX;
                cc *= RADIX * RADIX;
            }
            g = r * RADIX;
            while cc >= g {
                if f < sfmin * RADIX {
                    break;
                }
                f /= RADIX;
                cc /= RADIX * RADIX;
            }
            // Apply only if it reduces the combined norm meaningfully
            // (LAPACK's 0.95 factor prevents cycling).
            if (c * f + r / f) < 0.95 * s && f != 1.0 {
                scale[i] *= f;
                let inv = 1.0 / f;
                for j in 0..n {
                    let v = a[(i, j)];
                    a[(i, j)] = v * inv;
                }
                for j in 0..n {
                    let v = a[(j, i)];
                    a[(j, i)] = v * f;
                }
                converged = false;
            }
        }
        sweeps += 1;
        if converged || sweeps > 32 {
            break;
        }
    }
    Balance { scale, sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eigenvalues_hessenberg, gehrd, GehrdConfig, HessFactorization};
    use ft_lapack_test_sort::sorted;

    // tiny local helper namespace to keep the test readable
    mod ft_lapack_test_sort {
        use crate::hseqr::{sort_eigenvalues, Eigenvalue};

        pub fn sorted(mut evs: Vec<Eigenvalue>) -> Vec<Eigenvalue> {
            sort_eigenvalues(&mut evs);
            evs
        }
    }

    /// A badly scaled matrix produced by an *exact* diagonal similarity
    /// of a well-conditioned base — so the true spectrum is known: it is
    /// the base's spectrum.
    fn badly_scaled(n: usize, seed: u64) -> (Matrix, Matrix) {
        let base = ft_matrix::random::uniform(n, n, seed);
        let mut a = base.clone();
        for i in 0..n {
            let p = ((i % 7) as f64 - 3.0) * 4.0; // scales 2^-12 .. 2^12
            let f = 2f64.powf(p); // powers of two: the similarity is exact
            for j in 0..n {
                a[(i, j)] *= f;
            }
            for j in 0..n {
                a[(j, i)] /= f;
            }
        }
        (a, base)
    }

    fn eigs(a: &Matrix) -> Vec<crate::hseqr::Eigenvalue> {
        let mut p = a.clone();
        let tau = gehrd(&mut p, &GehrdConfig::default());
        let f = HessFactorization { packed: p, tau };
        sorted(eigenvalues_hessenberg(&f.h()).unwrap())
    }

    #[test]
    fn scales_are_powers_of_two() {
        let (mut a, _) = badly_scaled(20, 1);
        let b = balance(&mut a);
        for &s in &b.scale {
            assert!(s > 0.0);
            assert_eq!(s.log2().fract(), 0.0, "scale {s} not a power of two");
        }
        assert!(b.sweeps >= 1);
    }

    #[test]
    fn balancing_reduces_frobenius_norm() {
        // Osborne's objective: each applied scaling strictly reduces the
        // combined row+column norms, hence the overall magnitude spread.
        let (mut a, base) = badly_scaled(24, 2);
        let before = a.fro_norm();
        balance(&mut a);
        let after = a.fro_norm();
        assert!(after < before, "{before} -> {after}");
        // And it lands within a modest factor of the well-scaled base.
        assert!(
            after < 16.0 * base.fro_norm(),
            "{after} vs base {}",
            base.fro_norm()
        );
    }

    #[test]
    fn balanced_spectrum_matches_ground_truth() {
        // The bad scaling is an exact similarity of `base`, so the true
        // spectrum is base's. The balanced pipeline must recover it; the
        // unbalanced one is allowed to be (and typically is) worse.
        let (a0, base) = badly_scaled(16, 3);
        let truth = eigs(&base);
        let mut ab = a0.clone();
        balance(&mut ab);
        let e_bal = eigs(&ab);
        let mut worst_bal = 0.0f64;
        for (x, y) in truth.iter().zip(&e_bal) {
            let scale = x.abs().max(1.0);
            worst_bal = worst_bal.max((x.re - y.re).hypot(x.im - y.im) / scale);
        }
        assert!(worst_bal < 1e-9, "balanced spectrum error {worst_bal}");
    }

    #[test]
    fn already_balanced_is_noop() {
        let a0 = ft_matrix::random::uniform(16, 16, 4);
        let mut a = a0.clone();
        let b = balance(&mut a);
        assert!(b.scale.iter().all(|&s| s == 1.0), "{:?}", b.scale);
        assert_eq!(a, a0);
    }

    #[test]
    fn back_transform_recovers_eigenvectors() {
        // D⁻¹AD y = λy  ⇒  A (D y) = λ (D y).
        // Odd order: a real matrix of odd dimension always has at least
        // one real eigenvalue, so `real_eigenvectors` is never empty and
        // the test cannot be invalidated by an all-complex spectrum.
        let n = 13;
        let (a0, _) = badly_scaled(n, 5);
        let mut ab = a0.clone();
        let b = balance(&mut ab);

        let mut p = ab.clone();
        let tau = gehrd(&mut p, &GehrdConfig::default());
        let f = HessFactorization { packed: p, tau };
        let s = crate::real_schur(&f.h(), Some(f.q())).unwrap();
        let (lambdas, vecs) = s.real_eigenvectors();
        assert!(!lambdas.is_empty());
        for (j, &lambda) in lambdas.iter().enumerate() {
            let y: Vec<f64> = vecs.col(j).to_vec();
            let v = b.back_transform(&y);
            let mut av = vec![0.0; n];
            ft_blas::gemv(ft_blas::Trans::No, 1.0, &a0.as_view(), &v, 0.0, &mut av);
            // Residual relative to the original (badly scaled) matrix's
            // magnitude: the attainable accuracy for A·v.
            let tol = 1e-12 * a0.one_norm().max(1.0);
            for i in 0..n {
                assert!(
                    (av[i] - lambda * v[i]).abs() < tol,
                    "λ={lambda}: row {i}: {} vs {} (tol {tol})",
                    av[i],
                    lambda * v[i]
                );
            }
        }
    }
}
