//! Fixture: exactly one FTC006 violation (typo'd histogram name) on line 6.

/// Records into a histogram whose name is not in the declared registry —
/// the typo would silently report an empty distribution forever.
pub fn record_latency(us: u64) {
    ft_trace::histogram("serve.latencies_high").record(us);
}
