//! Resilience study: from the paper's §I soft-error-rate motivation to
//! measured behaviour under Poisson fault arrivals.
//!
//! The paper cites DRAM soft-error rates of 1k–10k FIT/chip (1 FIT = one
//! failure per 10⁹ device-hours), 100k FIT for 130 nm SRAM, 51.7 soft
//! errors/week on LANL's ASC Q, and a ~2×10⁻⁵ per-test-iteration flip
//! probability across 50 000 GPUs. This binary:
//!
//! 1. translates FIT-class rates into expected faults per factorization
//!    (using the simulated runtimes) and per fleet-week — showing why
//!    "rare per run" still means "routine at scale";
//! 2. sweeps the *expected faults per run* μ over a Poisson arrival
//!    process, runs the FT algorithm in timing mode with the sampled
//!    fault schedules, and reports the overhead distribution — the cost
//!    of resilience as a function of fault pressure;
//! 3. reports what the fault-prone baseline would have produced for the
//!    same schedules (silent corruption probability).

use ft_bench::{pct, Args, Table};
use ft_fault::{sample_in_region, Fault, FaultPlan, Phase, Region, ScheduledFault};
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Poisson sample via exponential gap accumulation.
fn poisson(mu: f64, rng: &mut impl Rng) -> usize {
    if mu <= 0.0 {
        return 0;
    }
    let mut t = 0.0f64;
    let mut k = 0usize;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t -= u.ln() / mu;
        if t > 1.0 {
            return k;
        }
        k += 1;
    }
}

fn main() {
    let args = Args::from_env();
    let n = 10110usize;
    let nb = 32;
    let a = Matrix::zeros(n, n);
    let iters = (n - 2).div_ceil(nb);

    // Baseline runtime from the simulator.
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
    let base = gehrd_hybrid(&a, &HybridConfig { nb }, &mut ctx, &mut FaultPlan::none());
    let t_run = base.sim_seconds;

    println!("Resilience study (N = {n}, nb = {nb}, simulated run time {t_run:.2} s)\n");

    // ---- part 1: FIT-rate translation --------------------------------
    println!("FIT-class rates vs this workload:");
    let mut t1 = Table::new(vec![
        "source (paper §I)",
        "rate",
        "expected faults / run",
        "runs per fault",
        "faults per 1000-node week",
    ]);
    for (label, fit) in [
        ("DRAM low (Baumann)", 1_000.0),
        ("DRAM high (Baumann)", 10_000.0),
        ("130nm SRAM (Jacob)", 100_000.0),
    ] {
        let per_hour = fit / 1e9;
        let per_run = per_hour * t_run / 3600.0;
        let week_fleet = per_hour * 24.0 * 7.0 * 1000.0;
        t1.row(vec![
            label.to_string(),
            format!("{fit:.0} FIT"),
            format!("{per_run:.2e}"),
            format!("{:.1e}", 1.0 / per_run),
            format!("{week_fleet:.1}"),
        ]);
    }
    println!("{}", t1.render());
    println!(
        "(ASC Q's observed 51.7 errors/week sits right in this band — rare per run,\n\
         routine per machine-week; protection must be cheap enough to leave on.)\n"
    );

    // ---- part 2: overhead vs fault pressure ---------------------------
    let trials = args.trials.unwrap_or(12);
    println!("Overhead under Poisson fault arrivals ({trials} trials per μ):");
    let mut t2 = Table::new(vec![
        "μ (faults/run)",
        "mean faults",
        "FT overhead mean",
        "FT overhead max",
        "baseline silently corrupted",
    ]);
    let mut rng = StdRng::seed_from_u64(args.seed);
    for mu in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut overheads = vec![];
        let mut total_faults = 0usize;
        let mut corrupted_runs = 0usize;
        for _ in 0..trials {
            let k = poisson(mu, &mut rng);
            total_faults += k;
            let mut faults = vec![];
            for _ in 0..k {
                let iteration = rng.gen_range(0..iters);
                let kcols = (iteration * nb).min(n - 1);
                let region = match rng.gen_range(0..3) {
                    0 => Region::Area1,
                    1 => Region::Area2,
                    _ => Region::Area3,
                };
                let Some((row, col)) = sample_in_region(n, kcols, region, &mut rng) else {
                    continue;
                };
                faults.push(ScheduledFault {
                    iteration,
                    phase: Phase::IterationStart,
                    fault: Fault::add(row, col, 1.0),
                });
            }
            // Any fault in H or Q data corrupts the unprotected baseline.
            if !faults.is_empty() {
                corrupted_runs += 1;
            }
            let mut plan = FaultPlan::new(faults);
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
            let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
            overheads.push((out.report.sim_seconds - t_run) / t_run);
        }
        let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
        let max = overheads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        t2.row(vec![
            format!("{mu}"),
            format!("{:.1}", total_faults as f64 / trials as f64),
            pct(mean),
            pct(max),
            format!("{corrupted_runs}/{trials}"),
        ]);
    }
    println!("{}", t2.render());
    println!(
        "\nreading: every fault the baseline silently absorbs into a wrong answer costs\n\
         FT-Hess a bounded, per-fault re-execution increment on top of the ~0.8%\n\
         standing overhead — even at fault pressures 10⁹× beyond measured FIT rates."
    );
}
