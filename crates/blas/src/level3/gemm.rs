//! General matrix–matrix multiply: `C ← α·op(A)·op(B) + β·C`.
//!
//! All implementations share **one accumulation contract** per element of
//! `C` (see [`super::microkernel`]): scale by `β` once, then for each
//! `KC`-deep block of the inner dimension (ascending) accumulate a fused
//! multiply-add chain over `p` ascending and fold it in with
//! `c = fma(α, acc, c)`. The reference oracle, the packed blocked kernel,
//! the AVX2 and scalar microkernel paths, and every thread-count of the
//! tiled parallel path therefore produce **bit-identical** results — the
//! invariant the FT driver's checksum thresholds rely on.

use super::abft::AbftSink;
use super::microkernel::{self, Isa, MR, NR};
use crate::backend;
use crate::flops::{model, record};
use crate::types::Trans;
use crate::workspace;
use ft_matrix::{MatView, MatViewMut};

/// Cache-blocking parameters (tuned for a ~32 KiB L1 / 256 KiB L2 class
/// core). The register tile is `MR × NR` (see [`super::microkernel`]): the
/// packed `A` block (`MC × KC` ≈ 256 KiB) targets L2, the `B` panel slice
/// in flight stays L1-resident.
pub(super) const MC: usize = 128;
pub(super) const KC: usize = 256;
pub(super) const NC: usize = 1024;

/// Minimum problem volume (`m·n·k`) before the packed kernel pays off.
/// The parallel gate lives in [`backend`] (`PARALLEL_MIN_VOLUME`), shared
/// by every level-3 kernel.
const BLOCKED_THRESHOLD: usize = 32 * 32 * 32;

/// Which GEMM implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmAlgo {
    /// Pick based on problem size and available threads.
    Auto,
    /// Loop-based oracle following the shared accumulation contract
    /// (bit-identical to the packed kernels; fastest for tiny problems).
    Reference,
    /// Cache-blocked with packed panels and the register-tiled
    /// microkernel.
    Blocked,
    /// [`GemmAlgo::Blocked`] with `C` split into `jc`/`ic` macro-tiles
    /// across the persistent pool. Bit-identical to [`GemmAlgo::Blocked`]
    /// for every thread count.
    Parallel,
}

#[inline]
pub(super) fn op_dims(trans: Trans, a: &MatView<'_>) -> (usize, usize) {
    match trans {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    }
}

#[inline(always)]
pub(super) fn op_at(trans: Trans, a: &MatView<'_>, i: usize, k: usize) -> f64 {
    // SAFETY: callers index within op(A)'s bounds, checked at entry.
    unsafe {
        match trans {
            Trans::No => a.at_unchecked(i, k),
            Trans::Yes => a.at_unchecked(k, i),
        }
    }
}

pub(super) fn check_dims(
    transa: Trans,
    transb: Trans,
    a: &MatView<'_>,
    b: &MatView<'_>,
    c: &MatViewMut<'_>,
) -> (usize, usize, usize) {
    let (m, ka) = op_dims(transa, a);
    let (kb, n) = op_dims(transb, b);
    assert_eq!(ka, kb, "gemm: inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.rows(), m, "gemm: C rows {} != {m}", c.rows());
    assert_eq!(c.cols(), n, "gemm: C cols {} != {n}", c.cols());
    (m, n, ka)
}

/// Reference GEMM: plain loops following the shared accumulation contract
/// — the oracle the packed kernels are bit-compared against, and the
/// fastest path for tiny problems where packing overhead dominates.
///
/// Unlike the pre-microkernel version, there is **no** `b(p,j) == 0.0`
/// early-out: skipping a multiply that the packed kernel performs made
/// oracle and kernel disagree on non-finite inputs (`0·NaN`, `0·Inf`,
/// signed-zero accumulation). Every update runs unconditionally; the
/// regression test `non_finite_inputs_bit_identical_across_algos` pins
/// the equivalence down.
pub fn gemm_ref(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    let (m, n, k) = check_dims(transa, transb, a, b, c);
    record(model::gemm(m, n, k));
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut acc = workspace::scratch(m);
    match microkernel::resolve_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: both `Avx2` and `ScalarFma` are only resolved after
        // runtime detection confirmed the `fma` CPU feature.
        Isa::Avx2 | Isa::ScalarFma => unsafe {
            ref_body_fma(transa, transb, alpha, a, b, c, m, n, k, &mut acc)
        },
        _ => ref_body(transa, transb, alpha, a, b, c, m, n, k, &mut acc),
    }
}

/// The reference loop nest. `#[inline(always)]` so [`ref_body_fma`]
/// compiles it with the `fma` target feature (`mul_add` becomes one
/// instruction); without hardware FMA the compiler emits the correctly
/// rounded soft `fma` — same bits either way.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn ref_body(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    c: &mut MatViewMut<'_>,
    m: usize,
    n: usize,
    k: usize,
    acc: &mut [f64],
) {
    for j in 0..n {
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            match transa {
                Trans::No => {
                    // Column-friendly: accumulate the block's contribution
                    // to the whole column of C in a scratch vector.
                    let accs = &mut acc[..m];
                    accs.fill(0.0);
                    for p in 0..kc {
                        let bpj = op_at(transb, b, pc + p, j);
                        let acol = a.col(pc + p);
                        for i in 0..m {
                            accs[i] = acol[i].mul_add(bpj, accs[i]);
                        }
                    }
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] = alpha.mul_add(accs[i], ccol[i]);
                    }
                }
                Trans::Yes => {
                    // Row `i` of op(A) is column `i` of A — contiguous.
                    let ccol = c.col_mut(j);
                    for (i, cij) in ccol.iter_mut().enumerate() {
                        let arow = &a.col(i)[pc..pc + kc];
                        let mut s = 0.0f64;
                        for (p, &av) in arow.iter().enumerate() {
                            s = av.mul_add(op_at(transb, b, pc + p, j), s);
                        }
                        *cij = alpha.mul_add(s, *cij);
                    }
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "fma")]
fn ref_body_fma(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    c: &mut MatViewMut<'_>,
    m: usize,
    n: usize,
    k: usize,
    acc: &mut [f64],
) {
    ref_body(transa, transb, alpha, a, b, c, m, n, k, acc);
}

#[inline]
pub(super) fn scale_c(beta: f64, c: &mut MatViewMut<'_>) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        c.fill(0.0);
    } else {
        c.scale(beta);
    }
}

// ft-check: hot
/// Packs a `mc × kc` block of `op(A)` into row-panels of height `MR`,
/// zero-padding the ragged edge. The online-ABFT column sums are *not*
/// fused here — `AbftSink::accum_asum` re-reads the packed (cache-hot)
/// buffer with the vector-dispatched sum pass, keeping this loop
/// identical for the plain and fused paths.
pub(super) fn pack_a(
    transa: Trans,
    a: &MatView<'_>,
    i0: usize,
    p0: usize,
    mc: usize,
    kc: usize,
    buf: &mut [f64],
) {
    let panels = mc.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kc);
    for pi in 0..panels {
        let ib = pi * MR;
        let h = MR.min(mc - ib);
        let panel = &mut buf[pi * MR * kc..(pi + 1) * MR * kc];
        for p in 0..kc {
            let dst = &mut panel[p * MR..p * MR + MR];
            for r in 0..h {
                dst[r] = op_at(transa, a, i0 + ib + r, p0 + p);
            }
            dst[h..].fill(0.0);
        }
    }
}

// ft-check: hot
/// Packs a `kc × nc` block of `op(B)` into column-panels of width `NR`,
/// zero-padding the ragged edge. The online-ABFT row sums are *not*
/// fused here — `AbftSink::accum_bsum` re-reads the packed (cache-hot)
/// buffer instead, because it needs them partitioned per verification
/// band.
pub(super) fn pack_b(
    transb: Trans,
    b: &MatView<'_>,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    buf: &mut [f64],
) {
    let panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kc);
    for pj in 0..panels {
        let jb = pj * NR;
        let w = NR.min(nc - jb);
        let panel = &mut buf[pj * NR * kc..(pj + 1) * NR * kc];
        for p in 0..kc {
            let dst = &mut panel[p * NR..p * NR + NR];
            for cidx in 0..w {
                dst[cidx] = op_at(transb, b, p0 + p, j0 + jb + cidx);
            }
            dst[w..].fill(0.0);
        }
    }
}

/// The serial blocked kernel body: BLIS loop nest `jc → pc → ic → jr → ir`
/// over one region of `C`, with `β` applied up front. Both the serial
/// entry points and every macro-tile of the threaded path run exactly this
/// code, which is what makes the partition irrelevant to the result bits.
///
/// When `abft` is given, the online-ABFT encode rides the packing stage
/// (`asum` fused into `pack_a`, `bsum` from a cache-hot pass over the
/// packed `B` panels) and the verification sums ride the final-`pc`
/// epilogue — see [`super::abft`]. The region may span any number of
/// `jc` blocks; [`super::abft::gemm_ft`] hands each worker one
/// band-aligned region so `A` is packed exactly once per `pc` block.
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_block_serial(
    isa: Isa,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
    mut abft: Option<&mut AbftSink<'_>>,
) {
    let (m, k) = op_dims(transa, a);
    let n = c.cols();
    debug_assert_eq!(c.rows(), m);
    debug_assert_eq!(op_dims(transb, b), (k, n));

    match abft.as_deref_mut() {
        Some(sink) => sink.scale_and_base(beta, c),
        None => scale_c(beta, c),
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        if let Some(sink) = abft {
            sink.finish_no_update();
        }
        return;
    }

    // Pack buffers come from the thread-local workspace arena: allocated
    // once per thread, reused by every subsequent call (each pool worker
    // owns its own arena, so the threaded path packs per macro-tile with
    // zero steady-state allocation).
    let mut abuf = workspace::scratch(MC.div_ceil(MR) * MR * KC);
    let mut bbuf = workspace::scratch(NC.div_ceil(NR) * NR * KC);

    let last_pc = (k - 1) / KC * KC;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            if let Some(sink) = abft.as_deref_mut() {
                sink.begin_block(kc);
            }
            pack_b(transb, b, pc, jc, kc, nc, &mut bbuf);
            if let Some(sink) = abft.as_deref_mut() {
                sink.accum_bsum(jc, nc, kc, &bbuf);
            }
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(transa, a, ic, pc, mc, kc, &mut abuf);
                if let Some(sink) = abft.as_deref_mut() {
                    sink.accum_asum(mc, kc, &abuf);
                    sink.accum_rowpred(ic, mc, kc, &abuf, jc, nc);
                }
                for jr in (0..nc).step_by(NR) {
                    let w = NR.min(nc - jr);
                    let bpanel = &bbuf[(jr / NR) * NR * kc..(jr / NR + 1) * NR * kc];
                    for ir in (0..mc).step_by(MR) {
                        let h = MR.min(mc - ir);
                        let apanel = &abuf[(ir / MR) * MR * kc..(ir / MR + 1) * MR * kc];
                        microkernel::tile(
                            isa,
                            kc,
                            alpha,
                            apanel,
                            bpanel,
                            c,
                            ic + ir,
                            jc + jr,
                            h,
                            w,
                        );
                    }
                }
                // Fresh-sum epilogue: once per finished block of the
                // final `pc` pass, while the block is cache-warm. Kept
                // out of the tile loops so the inner nest stays identical
                // to the plain path.
                if pc == last_pc {
                    if let Some(sink) = abft.as_deref_mut() {
                        sink.block_fresh_sums(c, ic, mc, jc, nc);
                    }
                }
            }
            if let Some(sink) = abft.as_deref_mut() {
                sink.accum_colpred(jc, nc, kc, &bbuf);
            }
        }
    }
}

/// Cache-blocked packed GEMM (single-threaded): the BLIS loop nest with
/// the runtime-selected microkernel.
pub fn gemm_blocked(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    let (m, n, k) = check_dims(transa, transb, a, b, c);
    record(model::gemm(m, n, k));
    let isa = microkernel::resolve_isa();
    gemm_block_serial(isa, transa, transb, alpha, a, b, beta, c, None);
}

/// The sub-view of `a` corresponding to rows `[i0, i0+h)` of `op(A)`.
pub(super) fn op_row_slice<'a>(
    transa: Trans,
    a: &MatView<'a>,
    i0: usize,
    h: usize,
    k: usize,
) -> MatView<'a> {
    match transa {
        Trans::No => a.subview(i0, 0, h, k),
        Trans::Yes => a.subview(0, i0, k, h),
    }
}

/// The sub-view of `b` corresponding to columns `[j0, j0+w)` of `op(B)`.
pub(super) fn op_col_slice<'b>(
    transb: Trans,
    b: &MatView<'b>,
    j0: usize,
    w: usize,
    k: usize,
) -> MatView<'b> {
    match transb {
        Trans::No => b.subview(0, j0, k, w),
        Trans::Yes => b.subview(j0, 0, w, k),
    }
}

/// Picks a `tr × tc` macro-tile grid for `t` workers over an `m × n`
/// result. The larger dimension is split first (splitting columns
/// duplicates only `A`-packing across bands and vice versa); the grid goes
/// 2-D only when one dimension cannot host `t` bands of at least two
/// register tiles. `tr·tc ≤ t`, so the pool never grows beyond the
/// requested worker count.
fn tile_grid(m: usize, n: usize, t: usize) -> (usize, usize) {
    if t <= 1 {
        return (1, 1);
    }
    let max_r = m.div_ceil(2 * MR).max(1);
    let max_c = n.div_ceil(2 * NR).max(1);
    if n >= m {
        let tc = t.min(max_c);
        let tr = (t / tc).min(max_r).max(1);
        (tr, tc)
    } else {
        let tr = t.min(max_r);
        let tc = (t / tr).min(max_c).max(1);
        (tr, tc)
    }
}

/// Threaded GEMM: partitions `C` into `jc`/`ic` macro-tiles (at most
/// `threads` of them, `0` = available parallelism) and runs the serial
/// blocked kernel on each tile with the matching `op(A)` row and `op(B)`
/// column slices, one persistent pool worker per extra tile. Each worker
/// owns a disjoint `MatViewMut`, so the parallelism is data-race free by
/// construction.
///
/// Every element of `C` is produced by exactly the serial accumulation
/// chain regardless of which tile it lands in, so the result is
/// **bit-identical** to [`gemm_blocked`] (and [`gemm_ref`]) for any thread
/// count and any grid shape.
#[allow(clippy::too_many_arguments)] // standard BLAS gemm signature + thread count
pub fn gemm_threaded(
    threads: usize,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    let (m, n, k) = check_dims(transa, transb, a, b, c);
    record(model::gemm(m, n, k));
    let t = if threads == 0 {
        backend::available_parallelism()
    } else {
        threads
    };
    let isa = microkernel::resolve_isa();
    let (tr, tc) = tile_grid(m, n, t);
    backend::for_each_tile(c.rb_mut(), tr, tc, |i0, j0, mut tile| {
        let av = op_row_slice(transa, a, i0, tile.rows(), k);
        let bv = op_col_slice(transb, b, j0, tile.cols(), k);
        gemm_block_serial(isa, transa, transb, alpha, &av, &bv, beta, &mut tile, None);
    });
}

/// GEMM with an explicit algorithm choice.
#[allow(clippy::too_many_arguments)] // standard BLAS gemm signature
pub fn gemm_with_algo(
    algo: GemmAlgo,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    match algo {
        GemmAlgo::Reference => gemm_ref(transa, transb, alpha, a, b, beta, c),
        GemmAlgo::Blocked => gemm_blocked(transa, transb, alpha, a, b, beta, c),
        GemmAlgo::Parallel => {
            // Explicit request for the threaded kernel: use the current
            // backend's worker count, or the whole machine when the
            // ambient backend is Serial.
            let workers = match backend::current_backend() {
                b @ backend::Backend::Threaded(_) => b.threads(),
                backend::Backend::Serial => backend::available_parallelism(),
            };
            gemm_threaded(workers, transa, transb, alpha, a, b, beta, c);
        }
        GemmAlgo::Auto => {
            let (m, ka) = op_dims(transa, a);
            let n = c.cols();
            let volume = m * n * ka;
            // The unified compute-bound gate in `backend` decides whether
            // the threaded path engages at all.
            let workers = backend::fork_threads(volume);
            if workers > 1 {
                gemm_threaded(workers, transa, transb, alpha, a, b, beta, c);
            } else if volume >= BLOCKED_THRESHOLD {
                gemm_blocked(transa, transb, alpha, a, b, beta, c);
            } else {
                gemm_ref(transa, transb, alpha, a, b, beta, c);
            }
        }
    }
}

/// `C ← α·op(A)·op(B) + β·C` with automatic algorithm selection.
pub fn gemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut MatViewMut<'_>,
) {
    gemm_with_algo(GemmAlgo::Auto, transa, transb, alpha, a, b, beta, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::{max_abs_diff, Matrix};

    fn mul_naive(transa: Trans, transb: Trans, a: &Matrix, b: &Matrix) -> Matrix {
        let av = a.as_view();
        let bv = b.as_view();
        let (m, k) = op_dims(transa, &av);
        let (_, n) = op_dims(transb, &bv);
        Matrix::from_fn(m, n, |i, j| {
            (0..k)
                .map(|p| op_at(transa, &av, i, p) * op_at(transb, &bv, p, j))
                .sum()
        })
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn gemm_ref_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = Matrix::zeros(2, 2);
        gemm_ref(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::filled(2, 2, 10.0);
        gemm_ref(
            Trans::No,
            Trans::No,
            2.0,
            &a.as_view(),
            &b.as_view(),
            0.5,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::from_rows(&[&[7.0, 9.0], &[11.0, 13.0]]));
    }

    #[test]
    fn all_transpose_combos_and_algos_match_naive() {
        for &(m, n, k) in &[
            (5usize, 7usize, 3usize),
            (13, 9, 17),
            (40, 33, 21),
            (64, 64, 64),
        ] {
            for (ta, tb) in [
                (Trans::No, Trans::No),
                (Trans::No, Trans::Yes),
                (Trans::Yes, Trans::No),
                (Trans::Yes, Trans::Yes),
            ] {
                let a = match ta {
                    Trans::No => ft_matrix::random::uniform(m, k, 1),
                    Trans::Yes => ft_matrix::random::uniform(k, m, 1),
                };
                let b = match tb {
                    Trans::No => ft_matrix::random::uniform(k, n, 2),
                    Trans::Yes => ft_matrix::random::uniform(n, k, 2),
                };
                let expect = mul_naive(ta, tb, &a, &b);
                for algo in [GemmAlgo::Reference, GemmAlgo::Blocked, GemmAlgo::Parallel] {
                    let mut c = Matrix::zeros(m, n);
                    gemm_with_algo(
                        algo,
                        ta,
                        tb,
                        1.0,
                        &a.as_view(),
                        &b.as_view(),
                        0.0,
                        &mut c.as_view_mut(),
                    );
                    let err = max_abs_diff(&c, &expect);
                    assert!(err < 1e-12, "{algo:?} {ta:?}/{tb:?} {m}x{n}x{k}: err {err}");
                }
            }
        }
    }

    #[test]
    fn algos_are_bit_identical() {
        // The contract is stronger than closeness: ref, blocked, and every
        // tiled parallel variant agree to the bit.
        for &(m, n, k) in &[(17usize, 13usize, 70usize), (64, 48, 300), (33, 129, 5)] {
            let a = ft_matrix::random::uniform(m, k, 11);
            let b = ft_matrix::random::uniform(k, n, 12);
            let c0 = ft_matrix::random::uniform(m, n, 13);
            let mut c_ref = c0.clone();
            gemm_ref(
                Trans::No,
                Trans::No,
                1.7,
                &a.as_view(),
                &b.as_view(),
                -0.3,
                &mut c_ref.as_view_mut(),
            );
            let mut c_blk = c0.clone();
            gemm_blocked(
                Trans::No,
                Trans::No,
                1.7,
                &a.as_view(),
                &b.as_view(),
                -0.3,
                &mut c_blk.as_view_mut(),
            );
            assert_bits_eq(&c_ref, &c_blk, "ref vs blocked");
            for t in [2usize, 3, 5] {
                let mut c_par = c0.clone();
                gemm_threaded(
                    t,
                    Trans::No,
                    Trans::No,
                    1.7,
                    &a.as_view(),
                    &b.as_view(),
                    -0.3,
                    &mut c_par.as_view_mut(),
                );
                assert_bits_eq(&c_ref, &c_par, "ref vs threaded");
            }
        }
    }

    #[test]
    fn non_finite_inputs_bit_identical_across_algos() {
        // Regression for the old `bpj == 0.0` early-out in the oracle: a
        // zero in op(B) against Inf/NaN in A must flow through the same
        // fma chain everywhere (0·Inf = NaN, not "skip").
        let mut a = ft_matrix::random::uniform(11, 9, 21);
        a[(3, 2)] = f64::INFINITY;
        a[(7, 5)] = f64::NAN;
        a[(0, 0)] = -0.0;
        let mut b = ft_matrix::random::uniform(9, 8, 22);
        b[(2, 1)] = 0.0;
        b[(5, 4)] = 0.0;
        b[(8, 7)] = f64::NEG_INFINITY;
        let c0 = ft_matrix::random::uniform(11, 8, 23);
        let mut c_ref = c0.clone();
        gemm_ref(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            1.0,
            &mut c_ref.as_view_mut(),
        );
        assert!(c_ref.has_non_finite(), "test must exercise NaN/Inf paths");
        let mut c_blk = c0.clone();
        gemm_blocked(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            1.0,
            &mut c_blk.as_view_mut(),
        );
        assert_bits_eq(&c_ref, &c_blk, "non-finite ref vs blocked");
        let mut c_par = c0.clone();
        gemm_threaded(
            3,
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            1.0,
            &mut c_par.as_view_mut(),
        );
        assert_bits_eq(&c_ref, &c_par, "non-finite ref vs threaded");
    }

    #[test]
    fn blocked_ragged_edges() {
        // Sizes chosen to leave remainders against MR=8 / NR=6 / KC=256.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (9, 5, 2),
            (17, 3, 300),
            (8, 6, 256),
            (15, 13, 259),
        ] {
            let a = ft_matrix::random::uniform(m, k, 3);
            let b = ft_matrix::random::uniform(k, n, 4);
            let expect = mul_naive(Trans::No, Trans::No, &a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm_blocked(
                Trans::No,
                Trans::No,
                1.0,
                &a.as_view(),
                &b.as_view(),
                0.0,
                &mut c.as_view_mut(),
            );
            assert!(max_abs_diff(&c, &expect) < 1e-11, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn gemm_on_subviews() {
        let big = ft_matrix::random::uniform(10, 10, 5);
        let a = big.view(1, 1, 4, 3);
        let b = big.view(5, 2, 3, 4);
        let mut c = Matrix::zeros(4, 4);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c.as_view_mut());
        let expect = mul_naive(
            Trans::No,
            Trans::No,
            &a.to_owned_matrix(),
            &b.to_owned_matrix(),
        );
        assert!(max_abs_diff(&c, &expect) < 1e-13);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::filled(2, 2, f64::NAN);
        gemm_blocked(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            0.0,
            &mut c.as_view_mut(),
        );
        // k = 0 with m, n > 0: C scaled by beta only.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::filled(2, 2, 3.0);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.as_view(),
            &b.as_view(),
            2.0,
            &mut c.as_view_mut(),
        );
        assert_eq!(c, Matrix::filled(2, 2, 6.0));
    }

    #[test]
    fn tile_grid_respects_bounds() {
        for &(m, n, t) in &[
            (1usize, 1usize, 4usize),
            (1000, 8, 4),
            (8, 1000, 4),
            (256, 256, 7),
            (0, 16, 4),
        ] {
            let (tr, tc) = tile_grid(m, n, t);
            assert!(tr * tc <= t.max(1), "{m}x{n} t={t} -> {tr}x{tc}");
            assert!(tr >= 1 && tc >= 1);
        }
    }
}
