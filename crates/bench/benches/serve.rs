//! Service throughput/latency bench: drives the closed-loop load
//! generator against a running `ft-serve` instance and drops the
//! headline numbers (throughput, exact p50/p95/p99 latency per priority,
//! fault-recovery accounting) into `BENCH_serve.json`.
//!
//! Not a criterion target: one load-generator run *is* the measurement —
//! statistical resampling of a 64-job closed loop would measure the OS
//! scheduler, not the service. `FT_BENCH_SMOKE=1` shrinks the mix for CI.

use ft_bench::{loadgen_records, service_records, smoke, write_bench_json, Record};
use ft_blas::active_simd_path;
use ft_serve::{loadgen, LoadgenConfig, Service, ServiceConfig, Shutdown};
use std::time::Duration;

fn cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

fn run_mix(label: &str, workers: usize, cfg: &LoadgenConfig) -> Vec<Record> {
    let service = Service::start(ServiceConfig {
        workers,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    let backend = service.worker_backend();
    println!(
        "serve bench [{label}]: {} workers x {:?}, {} clients, {} jobs",
        service.worker_count(),
        backend,
        cfg.clients,
        cfg.jobs
    );
    let summary = loadgen::run(&service, cfg);
    let stats = service.shutdown(Shutdown::Drain);

    let violations = summary.violations();
    assert!(
        violations.is_empty(),
        "service contract violated under load: {violations:?}"
    );

    let mut records = Vec::new();
    for mut rec in loadgen_records(&summary) {
        rec = rec
            .str("mix", label)
            .int("workers", workers as u64)
            .str("isa", active_simd_path())
            .int("cores", cores())
            .bool("smoke", smoke());
        records.push(rec);
    }
    for rec in service_records(&stats) {
        records.push(
            rec.str("mix", label)
                .str("isa", active_simd_path())
                .int("cores", cores()),
        );
    }
    records
}

fn main() {
    let (jobs, sizes) = if smoke() {
        (64, vec![16usize, 24, 32])
    } else {
        (128, vec![24usize, 32, 48, 64, 96])
    };

    let mut records = Vec::new();
    // Mixed faulty/clean load, the acceptance-criteria mix.
    records.extend(run_mix(
        "mixed_faults",
        2,
        &LoadgenConfig {
            clients: 4,
            jobs,
            sizes: sizes.clone(),
            fault_fraction: 0.25,
            weak_fraction: 0.5,
            submit_timeout: Duration::from_secs(300),
            ..LoadgenConfig::default()
        },
    ));
    // Fault-free baseline on the same mix: the service-layer overhead
    // comparison (queueing + scheduling vs pure reduction time).
    records.extend(run_mix(
        "clean_baseline",
        2,
        &LoadgenConfig {
            clients: 4,
            jobs,
            sizes,
            fault_fraction: 0.0,
            weak_fraction: 0.0,
            submit_timeout: Duration::from_secs(300),
            ..LoadgenConfig::default()
        },
    ));

    write_bench_json("serve", &records);
}
