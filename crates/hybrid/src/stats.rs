//! Execution statistics: per-resource busy time, per-class accounting,
//! and the makespan the performance figures report.

use crate::cost::OpClass;
use std::collections::HashMap;

/// Accumulated accounting for one simulated execution.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Simulated seconds each op class spent busy on its resource.
    pub class_seconds: HashMap<OpClass, f64>,
    /// Number of operations issued per class.
    pub class_counts: HashMap<OpClass, u64>,
    /// Total host busy seconds.
    pub host_busy: f64,
    /// Total device busy seconds (all streams).
    pub device_busy: f64,
    /// Total link busy seconds.
    pub link_busy: f64,
}

impl ExecStats {
    /// Records one operation.
    pub fn record(&mut self, class: OpClass, seconds: f64) {
        *self.class_seconds.entry(class).or_insert(0.0) += seconds;
        *self.class_counts.entry(class).or_insert(0) += 1;
        if class.is_host() {
            self.host_busy += seconds;
        } else if class.is_device() {
            self.device_busy += seconds;
        } else {
            self.link_busy += seconds;
        }
    }

    /// Busy seconds for one class (0 if never used).
    pub fn seconds(&self, class: OpClass) -> f64 {
        self.class_seconds.get(&class).copied().unwrap_or(0.0)
    }

    /// Operation count for one class.
    pub fn count(&self, class: OpClass) -> u64 {
        self.class_counts.get(&class).copied().unwrap_or(0)
    }

    /// Sum of all busy time across resources (an upper bound on the
    /// makespan; the gap between the two is the overlap win).
    pub fn total_busy(&self) -> f64 {
        self.host_busy + self.device_busy + self.link_busy
    }

    /// Renders a small table for reports. The name column is sized to the
    /// longest class actually present (padding a pre-formatted `{class:?}`
    /// with a fixed width misaligned rows once a variant outgrew it).
    pub fn summary(&self) -> String {
        let used: Vec<OpClass> = OpClass::ALL
            .into_iter()
            .filter(|&c| self.count(c) > 0)
            .collect();
        let name_w = used
            .iter()
            .map(|c| c.name().len())
            .max()
            .unwrap_or(0)
            .max("class".len());
        let mut out = format!("{:<name_w$} {:>6} {:>12}\n", "class", "count", "seconds");
        for class in used {
            out.push_str(&format!(
                "{:<name_w$} {:>6} {:>12.6}\n",
                class.name(),
                self.count(class),
                self.seconds(class)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_resource() {
        let mut s = ExecStats::default();
        s.record(OpClass::HostPanel, 1.0);
        s.record(OpClass::DeviceGemm, 2.0);
        s.record(OpClass::DeviceGemv, 3.0);
        s.record(OpClass::Transfer, 4.0);
        assert_eq!(s.host_busy, 1.0);
        assert_eq!(s.device_busy, 5.0);
        assert_eq!(s.link_busy, 4.0);
        assert_eq!(s.total_busy(), 10.0);
        assert_eq!(s.count(OpClass::DeviceGemm), 1);
        assert_eq!(s.seconds(OpClass::DeviceGemv), 3.0);
        assert_eq!(s.count(OpClass::HostGemm), 0);
    }

    #[test]
    fn summary_contains_used_classes_only() {
        let mut s = ExecStats::default();
        s.record(OpClass::Transfer, 1.5);
        let text = s.summary();
        assert!(text.contains("Transfer"));
        assert!(!text.contains("HostPanel"));
    }

    #[test]
    fn summary_snapshot_aligns_all_columns() {
        let mut s = ExecStats::default();
        s.record(OpClass::HostPanel, 1.0);
        s.record(OpClass::DeviceVector, 0.5);
        s.record(OpClass::Transfer, 0.25);
        let expected = "\
class         count      seconds
HostPanel         1     1.000000
DeviceVector      1     0.500000
Transfer          1     0.250000
";
        let text = s.summary();
        assert_eq!(text, expected);
        // Every row is exactly as wide as the header — the alignment the
        // old fixed-width `{class:?}` padding broke for long variants.
        let lines: Vec<&str> = text.lines().map(str::trim_end).collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }
}
