//! FTC011 — no panicking calls within two call-graph hops of the serve
//! worker run loop.
//!
//! A panic on a worker thread converts one failed job into a dead
//! worker: the queue keeps accepting, throughput quietly drops, and
//! only the `executor worker panicked` join-expect at shutdown reveals
//! it. FTC004 already flags panics file-by-file, but its allowlist is
//! audited per *file*; this rule adds a stricter, radius-based gate
//! around the fn tagged `// ft-check: worker-loop` (scheduler::run_job):
//! every `.unwrap()` / `.expect()` / `panic!` / `unreachable!` /
//! `todo!` / `unimplemented!` within ≤2 resolved call hops must carry
//! its own FTC011 allowlist entry — the poisoning family and deliberate
//! invariant aborts get re-justified at this tighter radius, everything
//! else must become a recorded job failure.

use super::Analysis;
use crate::callgraph::FnRef;
use crate::lexer::{Tok, TokKind};
use crate::Finding;

const RADIUS: usize = 2;

/// Runs FTC011.
pub fn run(a: &Analysis<'_>, findings: &mut Vec<Finding>) {
    let mut seen: std::collections::HashSet<(usize, u32, u32)> = std::collections::HashSet::new();
    for (fi, fm) in a.files.iter().enumerate() {
        for (ki, f) in fm.items.fns.iter().enumerate() {
            if !f.has_marker("worker-loop") || a.fn_in_test(fi, ki) {
                continue;
            }
            let root = FnRef {
                file: fi,
                fn_idx: ki,
            };
            for (r, depth) in a.graph.reachable(root, RADIUS) {
                let gm = &a.files[r.file];
                let g = &gm.items.fns[r.fn_idx];
                let Some((open, close)) = g.body else {
                    continue;
                };
                for (what, line, col) in panic_sites(&gm.lexed.toks, open, close) {
                    if !seen.insert((r.file, line, col)) {
                        continue;
                    }
                    let via = if depth == 0 {
                        format!("in worker-loop fn `{}`", f.qual_name())
                    } else {
                        format!(
                            "{depth} call hop{} from worker-loop fn `{}` (via `{}`)",
                            if depth == 1 { "" } else { "s" },
                            f.qual_name(),
                            g.qual_name()
                        )
                    };
                    findings.push(Finding {
                        path: gm.rel.clone(),
                        line: line as usize + 1,
                        col: col as usize + 1,
                        rule: "FTC011",
                        message: format!("panicking call `{what}` {via}"),
                        hint: "a worker panic silently kills throughput until shutdown; \
                               convert to a recorded job failure (JobError), or audit the \
                               abort with an FTC011 check_allow.toml entry",
                    });
                }
            }
        }
    }
}

/// Panic-shaped token patterns in a body range.
fn panic_sites(toks: &[Tok], open: usize, close: usize) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let next = toks.get(k + 1);
        match t.text.as_str() {
            "unwrap" | "expect"
                if toks[k - 1].is_punct(".") && next.is_some_and(|n| n.is_punct("(")) =>
            {
                out.push((format!(".{}()", t.text), t.line, t.col));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next.is_some_and(|n| n.is_punct("!")) =>
            {
                out.push((format!("{}!", t.text), t.line, t.col));
            }
            _ => {}
        }
        k += 1;
    }
    out
}
