//! Execution reports: what the fault-tolerant run detected, corrected and
//! spent.

use ft_fault::AppliedFault;
use ft_hybrid::ExecStats;
use ft_trace::Event;

/// Why a fault-tolerant run ended in a state the driver could not verify
/// — the structured form of "unrecoverable corruption" that callers (and
/// the `ft-serve` retry policy) branch on, instead of grepping
/// [`FtReport::recoveries`] for unresolved episodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// An iteration's detector kept firing after
    /// `FtConfig::max_recovery_attempts` rollback/repair/re-execute
    /// cycles; the driver fell back to re-encoding the checksums from the
    /// (possibly still corrupt) data so the factorization could finish.
    RecoveryExhausted {
        /// Panel iteration whose detection could not be cleared.
        iteration: usize,
    },
    /// The end-of-run whole-matrix consistency check located an error
    /// pattern it could not resolve to unique positions (rectangular
    /// ambiguity); corrections were applied best-effort.
    UnresolvedFinalCheck {
        /// Iteration count at the time of the final check.
        iteration: usize,
    },
}

/// One detection-and-recovery episode.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Panel iteration at whose end the mismatch was detected.
    pub iteration: usize,
    /// `|Sre − Sce|` that tripped the detector.
    pub mismatch: f64,
    /// Errors located and corrected (row, col, delta applied).
    pub corrected: Vec<(usize, usize, f64)>,
    /// Whether the located positions were resolvable (non-rectangle).
    pub resolved: bool,
}

/// Summary of one fault-tolerant factorization.
#[derive(Clone, Debug, Default)]
pub struct FtReport {
    /// Matrix dimension.
    pub n: usize,
    /// Panel width.
    pub nb: usize,
    /// Number of panel iterations executed (excluding re-executions).
    pub iterations: usize,
    /// Iterations re-executed due to recovery.
    pub redone_iterations: usize,
    /// Detection episodes (each may correct several simultaneous errors).
    pub recoveries: Vec<RecoveryEvent>,
    /// Errors corrected in `Q` storage by the end-of-run check.
    pub q_corrections: Vec<(usize, usize, f64)>,
    /// Indices of reflector scales repaired via the `tau` scalar checksum
    /// by the end-of-run check.
    pub tau_corrections: Vec<usize>,
    /// Residual deficits flagged by the fused online-ABFT kernels
    /// (`FtConfig::online_abft`); 0 when the mode is off or all gemms ran
    /// clean. Unlike [`FtReport::recoveries`] these fire *inside* the
    /// trailing updates, before the iteration-level detector.
    pub online_detections: usize,
    /// Elements corrected in place by the fused online-ABFT kernels.
    pub online_corrections: usize,
    /// Faults injected by the test harness (provenance for reports).
    pub injected: Vec<AppliedFault>,
    /// Resolved detection threshold used.
    pub threshold: f64,
    /// Simulated makespan, seconds.
    pub sim_seconds: f64,
    /// Real wall-clock of the driver call, seconds (one `Instant` pair per
    /// run; always measured).
    pub wall_seconds: f64,
    /// Simulated resource statistics.
    pub stats: ExecStats,
    /// Wall-clock per-phase breakdown (populated only when `ft-trace`
    /// collection is enabled; empty otherwise).
    pub phases: PhaseBreakdown,
}

/// Wall-clock attribution of one fault-tolerant run to the driver's
/// disjoint leaf phases — the reproduction of the paper's Figure 6
/// overhead decomposition. All values are seconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Checksum encoding: initial encode, per-panel checksum extensions,
    /// and post-recovery re-encodes (`ft.encode`).
    pub encode: f64,
    /// Panel factorizations (`ft.panel`).
    pub panel: f64,
    /// Trailing-matrix updates (`ft.trailing`), *excluding* any fused
    /// online-ABFT verify time nested inside them (see
    /// [`PhaseBreakdown::abft`]).
    pub trailing: f64,
    /// Fused online-ABFT verify/locate/correct epilogues (`blas.abft`).
    /// These spans nest inside `ft.trailing`, so their time is moved out
    /// of [`PhaseBreakdown::trailing`] to keep the rows disjoint.
    pub abft: f64,
    /// Checksum-mismatch detection scans (`ft.detect`).
    pub detect: f64,
    /// Reverse-computation rollbacks (`ft.reverse`).
    pub reverse: f64,
    /// Error location from checksum residues (`ft.locate`).
    pub locate: f64,
    /// Error correction writes (`ft.correct`).
    pub correct: f64,
    /// End-of-run `Q`/`tau` checksum verification (`ft.qprotect`).
    pub qprotect: f64,
}

impl PhaseBreakdown {
    /// Builds a breakdown from trace events: keeps category `"wall"`
    /// events named `ft.*` recorded by thread `tid` (the driver thread —
    /// pool-worker spans must not double-count into the driver's
    /// timeline).
    pub fn from_events(events: &[Event], tid: u64) -> PhaseBreakdown {
        let mut b = PhaseBreakdown::default();
        for ev in events {
            if ev.cat != "wall" || ev.tid != tid {
                continue;
            }
            let secs = ev.dur_us / 1e6;
            match ev.name {
                "ft.encode" => b.encode += secs,
                "ft.panel" => b.panel += secs,
                "ft.trailing" => b.trailing += secs,
                // The fused-ABFT epilogue span nests inside `ft.trailing`:
                // move its time out of `trailing` so the rows stay
                // disjoint and `ft_overhead` charges it correctly.
                "blas.abft" => {
                    b.abft += secs;
                    b.trailing -= secs;
                }
                "ft.detect" => b.detect += secs,
                "ft.reverse" => b.reverse += secs,
                "ft.locate" => b.locate += secs,
                "ft.correct" => b.correct += secs,
                "ft.qprotect" => b.qprotect += secs,
                _ => {}
            }
        }
        b
    }

    /// Sum of all phases, seconds. The phases are disjoint leaf spans, so
    /// this approximates the run's wall-clock from below (the gap is
    /// un-instrumented glue).
    pub fn total(&self) -> f64 {
        self.encode
            + self.panel
            + self.trailing
            + self.abft
            + self.detect
            + self.reverse
            + self.locate
            + self.correct
            + self.qprotect
    }

    /// Fault-tolerance overhead phases only (everything that is not the
    /// baseline factorization's panel + trailing work), seconds.
    pub fn ft_overhead(&self) -> f64 {
        self.total() - self.panel - self.trailing
    }

    /// `(name, seconds)` rows in fixed phase order, for report writers.
    pub fn rows(&self) -> [(&'static str, f64); 9] {
        [
            ("encode", self.encode),
            ("panel", self.panel),
            ("trailing", self.trailing),
            ("abft", self.abft),
            ("detect", self.detect),
            ("reverse", self.reverse),
            ("locate", self.locate),
            ("correct", self.correct),
            ("qprotect", self.qprotect),
        ]
    }

    /// `true` if no phase recorded any time (collection was off).
    pub fn is_empty(&self) -> bool {
        self.total() == 0.0
    }
}

impl FtReport {
    /// Total individual element corrections (H region).
    pub fn corrections(&self) -> usize {
        self.recoveries.iter().map(|r| r.corrected.len()).sum()
    }

    /// `true` if any detection episode failed to resolve error positions.
    pub fn any_unresolved(&self) -> bool {
        self.recoveries.iter().any(|r| !r.resolved)
    }

    /// Simulated GFLOP/s against the `10/3·n³` nominal flop count
    /// (the y-axis of the paper's Figure 6), via the shared
    /// [`ft_blas::gehrd_gflops`] helper.
    pub fn gflops(&self) -> f64 {
        ft_blas::gehrd_gflops(self.n, self.sim_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_gflops() {
        let mut r = FtReport {
            n: 1000,
            nb: 32,
            sim_seconds: 1.0,
            ..Default::default()
        };
        r.recoveries.push(RecoveryEvent {
            iteration: 3,
            mismatch: 1.0,
            corrected: vec![(1, 2, 0.5), (3, 4, -0.5)],
            resolved: true,
        });
        assert_eq!(r.corrections(), 2);
        assert!(!r.any_unresolved());
        let expect = (10.0 / 3.0) * 1e9 / 1e9;
        assert!((r.gflops() - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_time_gflops_is_zero() {
        let r = FtReport::default();
        assert_eq!(r.gflops(), 0.0);
    }

    #[test]
    fn breakdown_filters_by_tid_category_and_prefix() {
        let ev = |name, cat, tid, dur_us| Event {
            name,
            cat,
            arg: None,
            tid,
            start_us: 0.0,
            dur_us,
            ctx: None,
        };
        let events = vec![
            ev("ft.panel", "wall", 1, 2e6),
            ev("ft.panel", "wall", 1, 1e6),
            ev("ft.detect", "wall", 1, 5e5),
            ev("ft.panel", "wall", 2, 9e6),   // other thread: excluded
            ev("ft.trailing", "sim", 1, 9e6), // sim category: excluded
            ev("lahr2", "wall", 1, 9e6),      // non-ft name: excluded
        ];
        let b = PhaseBreakdown::from_events(&events, 1);
        assert!((b.panel - 3.0).abs() < 1e-12);
        assert!((b.detect - 0.5).abs() < 1e-12);
        assert_eq!(b.trailing, 0.0);
        assert!((b.total() - 3.5).abs() < 1e-12);
        assert!((b.ft_overhead() - 0.5).abs() < 1e-12);
        assert!(!b.is_empty());
        assert!(PhaseBreakdown::default().is_empty());
        assert_eq!(b.rows()[1], ("panel", b.panel));
    }

    #[test]
    fn abft_time_moves_out_of_trailing() {
        // The `blas.abft` span nests inside `ft.trailing`; the breakdown
        // must carve it out so the rows stay disjoint and `total()` does
        // not double-count the nested seconds.
        let ev = |name, dur_us| Event {
            name,
            cat: "wall",
            arg: None,
            tid: 1,
            start_us: 0.0,
            dur_us,
            ctx: None,
        };
        let events = vec![
            ev("ft.trailing", 4e6), // includes 1s of nested abft
            ev("blas.abft", 1e6),
            ev("ft.panel", 2e6),
        ];
        let b = PhaseBreakdown::from_events(&events, 1);
        assert!((b.trailing - 3.0).abs() < 1e-12);
        assert!((b.abft - 1.0).abs() < 1e-12);
        assert!((b.total() - 6.0).abs() < 1e-12);
        assert!((b.ft_overhead() - 1.0).abs() < 1e-12, "{}", b.ft_overhead());
        assert_eq!(b.rows()[3], ("abft", b.abft));
    }
}
