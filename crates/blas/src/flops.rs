//! Global floating-point-operation accounting.
//!
//! §V of the paper derives closed-form FLOP counts for the fault-tolerant
//! algorithm's extra work (`FLOPinit`, `FLOPchkV`, `FLOPr_chk`, …) and shows
//! the total is `O(N²)` against the factorization's `10/3·N³`. To *verify*
//! those formulas rather than restate them, every kernel in this crate
//! reports its FLOPs to a global counter which the `flops_analysis` harness
//! reads around individual phases.
//!
//! Counting is off by default (an atomic load per kernel call when disabled,
//! nothing else), so benchmark numbers are unaffected unless accounting was
//! explicitly requested.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static FLOPS: AtomicU64 = AtomicU64::new(0);

/// Turns global FLOP counting on or off.
pub fn set_flop_counting(enabled: bool) {
    COUNTING.store(enabled, Ordering::Relaxed);
}

/// Resets the global counter to zero.
pub fn reset_flops() {
    FLOPS.store(0, Ordering::Relaxed);
}

/// The number of FLOPs recorded since the last reset.
pub fn flop_count() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Records `n` FLOPs if counting is enabled. Called by every kernel.
#[inline]
pub fn record(n: u64) {
    if COUNTING.load(Ordering::Relaxed) {
        FLOPS.fetch_add(n, Ordering::Relaxed);
    }
}

/// RAII scope: enables counting on construction, and on drop restores the
/// previous enablement. Reads are via [`flop_count`].
pub struct FlopGuard {
    was_enabled: bool,
}

impl FlopGuard {
    /// Starts a counting scope and zeroes the counter.
    pub fn new() -> Self {
        let was_enabled = COUNTING.swap(true, Ordering::Relaxed);
        reset_flops();
        FlopGuard { was_enabled }
    }

    /// FLOPs recorded since this guard was created.
    pub fn count(&self) -> u64 {
        flop_count()
    }
}

impl Default for FlopGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for FlopGuard {
    fn drop(&mut self) {
        COUNTING.store(self.was_enabled, Ordering::Relaxed);
    }
}

/// Standard FLOP models for the kernels (multiply and add counted
/// separately, matching the paper's `2mn`-style accounting).
pub mod model {
    /// `C ← αAB + βC` for an `m×n` result with inner dimension `k`.
    pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
        (2 * m * n * k) as u64
    }

    /// `y ← αAx + βy` for an `m×n` matrix.
    pub fn gemv(m: usize, n: usize) -> u64 {
        (2 * m * n) as u64
    }

    /// Rank-1 update of an `m×n` matrix.
    pub fn ger(m: usize, n: usize) -> u64 {
        (2 * m * n) as u64
    }

    /// Dot product of length-`n` vectors (`n` multiplies + `n−1` adds,
    /// rounded to `2n` as in the paper's `N + N − 1` counts).
    pub fn dot(n: usize) -> u64 {
        if n == 0 {
            0
        } else {
            (2 * n - 1) as u64
        }
    }

    /// `y ← αx + y` of length `n`.
    pub fn axpy(n: usize) -> u64 {
        (2 * n) as u64
    }

    /// Triangular matrix–vector product of order `n`.
    pub fn trmv(n: usize) -> u64 {
        (n * n) as u64
    }

    /// Triangular solve / multiply with an `m×n` right-hand side, triangle
    /// of order `k`.
    pub fn trmm(k: usize, other: usize) -> u64 {
        (k * k * other) as u64
    }

    /// Blocked Hessenberg reduction of order `n`: `10/3·n³` (paper §V).
    pub fn gehrd(n: usize) -> u64 {
        (10 * n * n * n) as u64 / 3
    }
}

/// Nominal FLOP count of a Hessenberg reduction of order `n` as a float:
/// `10/3·n³` (paper §V). The single source of truth shared by
/// `FtReport::gflops`, the bench binaries and the FLOP-overhead analysis —
/// each used to re-derive this inline.
pub fn gehrd_nominal_flops(n: usize) -> f64 {
    10.0 / 3.0 * (n as f64).powi(3)
}

/// Effective GFLOP/s of a Hessenberg reduction of order `n` completed in
/// `seconds`, using the nominal `10/3·n³` operation count. Non-positive or
/// non-finite durations yield 0.0 instead of infinities in reports.
pub fn gehrd_gflops(n: usize, seconds: f64) -> f64 {
    if seconds.is_finite() && seconds > 0.0 {
        gehrd_nominal_flops(n) / seconds / 1e9
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_disabled_by_default_records_nothing() {
        set_flop_counting(false);
        reset_flops();
        record(100);
        assert_eq!(flop_count(), 0);
    }

    #[test]
    fn guard_counts_and_restores() {
        set_flop_counting(false);
        {
            let g = FlopGuard::new();
            record(42);
            assert_eq!(g.count(), 42);
            record(8);
            assert_eq!(g.count(), 50);
        }
        reset_flops();
        record(7);
        assert_eq!(flop_count(), 0, "counting should be off after guard drop");
    }

    #[test]
    fn models_match_hand_counts() {
        assert_eq!(model::gemm(2, 3, 4), 48);
        assert_eq!(model::gemv(3, 5), 30);
        assert_eq!(model::dot(4), 7);
        assert_eq!(model::dot(0), 0);
        assert_eq!(model::gehrd(3), 90);
    }

    #[test]
    fn shared_gflops_helper_is_consistent() {
        assert!((gehrd_nominal_flops(3) - 90.0).abs() < 1.0);
        // 10/3 · 256³ flops in one second = ~55.9 GFLOP/s.
        let g = gehrd_gflops(256, 1.0);
        assert!((g - gehrd_nominal_flops(256) / 1e9).abs() < 1e-12);
        assert_eq!(gehrd_gflops(256, 0.0), 0.0);
        assert_eq!(gehrd_gflops(256, f64::NAN), 0.0);
    }
}
