//! Minimal fixed-width table rendering for experiment reports.

/// A simple left-header table accumulated row by row and rendered with
/// aligned columns (markdown-flavoured, so reports paste cleanly).
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: vec![],
        }
    }

    /// Appends one row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for c in 0..ncols {
                line.push_str(&format!(" {:<w$} |", cells[c], w = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a residual like the paper's tables (`6.2529 × 10^-18` style,
/// rendered ASCII as `6.2529e-18`).
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else {
        format!("{v:.4e}")
    }
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["N", "value"]);
        t.row(vec!["1022", "6.2529e-18"]);
        t.row(vec!["10110", "1.75e-17"]);
        let s = t.render();
        assert!(s.contains("| N     | value      |"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(6.2529e-18), "6.2529e-18");
        assert_eq!(pct(0.0213), "2.13%");
    }
}
