//! Criterion bench: the fault-tolerance micro-costs in isolation —
//! encoding, extension construction, detection, localization — i.e. the
//! components §V budgets as `O(N²)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_hessenberg::encode::{extend_v, extend_y, ExtMatrix};
use ft_hessenberg::recovery::locate_errors;

fn bench_ft_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("ft_components");
    group.sample_size(20);
    for &n in &[256usize, 512] {
        let a = ft_matrix::random::uniform(n, n, 3);
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(ExtMatrix::encode(&a)));
        });

        let ax = ExtMatrix::encode(&a);
        group.bench_with_input(BenchmarkId::new("detect_sre_sce", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(ax.sre() - ax.sce()));
        });
        group.bench_with_input(BenchmarkId::new("locate", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(locate_errors(&ax, 0, 1e-10).errors.len()));
        });

        // Panel-shaped extension construction (nb = 32).
        let nb = 32;
        let m = n - 1;
        let v = ft_matrix::random::uniform(m, nb, 4);
        let t = {
            let mut t = ft_matrix::random::uniform(nb, nb, 5);
            for j in 0..nb {
                for i in j + 1..nb {
                    t[(i, j)] = 0.0;
                }
            }
            t
        };
        let y = ft_matrix::random::uniform(n, nb, 6);
        let seg: Vec<f64> = (0..m).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("extend_v", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(extend_v(&v)));
        });
        group.bench_with_input(BenchmarkId::new("extend_y", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(extend_y(&y, &seg, &v, &t)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ft_components);
criterion_main!(benches);
