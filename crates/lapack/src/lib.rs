#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-based loops mirror the LAPACK reference codes
//! LAPACK-style factorizations for the FT-Hess reproduction.
//!
//! Implements, from scratch and in safe Rust on top of [`ft_blas`], the
//! dense kernels the paper's algorithm is composed of:
//!
//! * [`householder`] — elementary reflector generation (`larfg`) and
//!   application (`larf`), with LAPACK's sign convention and safe scaling;
//! * [`wy`] — the compact WY representation: triangular factor (`larft`)
//!   and block reflector application (`larfb`);
//! * [`mod@gehd2`] — unblocked Hessenberg reduction (reference algorithm,
//!   paper §III-A);
//! * [`mod@lahr2`] — the panel factorization producing `V`, `T`, `Y = A·V·T`
//!   (paper §III-B/C, LAPACK `DLAHRD`/`DLAHR2`);
//! * [`mod@gehrd`] — blocked Hessenberg reduction (LAPACK `DGEHRD`,
//!   Algorithm 1 of the paper) plus `Q` formation and residual helpers;
//! * [`mod@geqrf`] — blocked QR factorization (substrate; also used to build
//!   random orthogonal matrices for tests);
//! * [`mod@sytrd`] — symmetric tridiagonal reduction and a tridiagonal QL
//!   eigensolver (the second two-sided factorization, paper §VII);
//! * [`mod@hseqr`] — Francis double-shift QR iteration computing the
//!   eigenvalues of an upper Hessenberg matrix (what Hessenberg reduction
//!   is *for*; used by the end-to-end examples).
//!
//! The reflector storage convention matches LAPACK: after a reduction, the
//! upper triangle plus first sub-diagonal of `A` hold `H`, and column `j`
//! below the sub-diagonal holds the tail of the Householder vector `v_j`
//! (whose leading element is an implicit 1).

pub mod balance;
pub mod gehd2;
pub mod gehrd;
pub mod geqrf;
pub mod householder;
pub mod hseqr;
pub mod lahr2;
pub mod schur;
pub mod wy;

pub use balance::{balance, Balance};
pub use gehd2::gehd2;
pub use gehrd::{
    extract_h, form_q, form_q_blocked, gehrd, lookahead_from_env, GehrdConfig, HessFactorization,
};
pub use geqrf::{form_q_qr, geqrf, random_orthogonal};
pub use householder::{larf, larfg};
pub use hseqr::{eigenvalues_hessenberg, Eigenvalue};
pub use lahr2::{lahr2, lahr2_finish, lahr2_prefix, lahr2_within, Panel, PanelInProgress};
pub use schur::{real_schur, SchurDecomposition};
pub use wy::{larfb, larft};
pub mod sytrd;

pub use sytrd::{
    form_q_tridiag, steqr_eigenvalues, steqr_full, sytd2, sytrd, TridiagFactorization,
};
