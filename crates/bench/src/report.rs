//! Machine-readable bench results: a dependency-free JSON writer that the
//! bench targets use to drop `BENCH_<stem>.json` files at the repo root
//! (CI uploads them as artifacts; the numbers back the threading claims
//! in DESIGN.md).
//!
//! The workspace deliberately carries no serde, so the emitter is a small
//! hand-rolled one: flat records of string/number/bool fields, which is
//! all a bench summary needs.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One value in a bench record.
#[derive(Clone, Debug)]
pub enum Value {
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// An unsigned integer, kept exact (no float rounding).
    Int(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// One flat JSON object, field order preserved.
#[derive(Clone, Debug, Default)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// Empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Adds a numeric field (builder style).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_string(), Value::Num(v)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_string(), Value::Int(v)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_string(), Value::Str(v.to_string())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_string(), Value::Bool(v)));
        self
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit_value(v: &Value, out: &mut String) {
    match v {
        Value::Num(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::Num(_) => out.push_str("null"),
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => escape(s, out),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Serializes `records` as `{"bench": <stem>, "records": [...]}`.
pub fn to_json(stem: &str, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": ");
    escape(stem, &mut out);
    out.push_str(",\n  \"records\": [\n");
    for (ri, rec) in records.iter().enumerate() {
        out.push_str("    {");
        for (fi, (key, value)) in rec.fields.iter().enumerate() {
            if fi > 0 {
                out.push_str(", ");
            }
            escape(key, &mut out);
            out.push_str(": ");
            emit_value(value, &mut out);
        }
        out.push('}');
        if ri + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Repo root (two levels up from this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Writes `BENCH_<stem>.json` at the repo root and returns its path.
/// Failures are reported but non-fatal — a bench run must never die on a
/// read-only checkout.
pub fn write_bench_json(stem: &str, records: &[Record]) -> Option<PathBuf> {
    let path = repo_root().join(format!("BENCH_{stem}.json"));
    match std::fs::write(&path, to_json(stem, records)) {
        Ok(()) => {
            println!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("BENCH_{stem}.json not written: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_escaping() {
        let records = vec![
            Record::new()
                .str("kernel", "gemm \"n=128\"")
                .num("ms", 1.5)
                .int("dispatches", 3)
                .bool("smoke", true),
            Record::new().num("bad", f64::NAN),
        ];
        let s = to_json("demo", &records);
        assert!(s.contains("\"bench\": \"demo\""));
        assert!(s.contains("\"kernel\": \"gemm \\\"n=128\\\"\""));
        assert!(s.contains("\"ms\": 1.5"));
        assert!(s.contains("\"dispatches\": 3"));
        assert!(s.contains("\"smoke\": true"));
        assert!(s.contains("\"bad\": null"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
