//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Throughput`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark runs `sample_size` samples; every
//! sample executes a batch of iterations calibrated so one sample takes
//! roughly [`TARGET_SAMPLE`]. The median per-iteration time is reported,
//! plus element throughput when the group sets one.
//!
//! Setting the environment variable `FT_BENCH_SMOKE=1` (or passing
//! `--smoke`) switches to a single sample of a single iteration per
//! benchmark — the CI mode that merely proves every bench path executes.

use std::time::{Duration, Instant};

/// Target wall-clock duration of one sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Opaque value barrier — stops the optimizer from deleting the benched
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. flops or matrix entries) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A `function_name/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Label from a function name and a `Display`able parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Runs the measured routine and accumulates elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context (one per bench binary).
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let env_smoke = std::env::var("FT_BENCH_SMOKE")
            .map(|v| v != "0")
            .unwrap_or(false);
        let arg_smoke = std::env::args().any(|a| a == "--smoke");
        Criterion {
            smoke: env_smoke || arg_smoke,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            smoke: self.smoke,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    smoke: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration work, enabling derived throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` against `input` under the given id.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (samples, iters) = if self.smoke {
            (1, 1)
        } else {
            // Calibrate: time one iteration, then size batches toward
            // TARGET_SAMPLE (at least 1 iteration per sample).
            let mut probe = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut probe, input);
            let per_iter = probe.elapsed.max(Duration::from_nanos(1));
            let iters = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
            (self.sample_size, iters)
        };

        let mut per_iter_secs: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher, input);
            per_iter_secs.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter_secs.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_secs[per_iter_secs.len() / 2];

        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        let time = format_seconds(median);
        match self.throughput {
            Some(Throughput::Elements(elems)) if median > 0.0 => {
                let rate = elems as f64 / median;
                println!(
                    "{label:<48} time: {time:>12}   thrpt: {:>14}",
                    format_rate(rate, "elem/s")
                );
            }
            Some(Throughput::Bytes(bytes)) if median > 0.0 => {
                let rate = bytes as f64 / median;
                println!(
                    "{label:<48} time: {time:>12}   thrpt: {:>14}",
                    format_rate(rate, "B/s")
                );
            }
            _ => println!("{label:<48} time: {time:>12}"),
        }
        self
    }

    /// Closes the group (kept for API parity; output is already printed).
    pub fn finish(self) {}
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.3} {unit}")
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor_smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |bench, &n| {
            bench.iter(|| (0..n).map(black_box).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut criterion = Criterion { smoke: true };
        sample_bench(&mut criterion);
    }

    #[test]
    fn formatting_is_scaled() {
        assert_eq!(format_seconds(2.5), "2.5000 s");
        assert_eq!(format_seconds(2.5e-3), "2.5000 ms");
        assert!(format_rate(3.2e9, "elem/s").starts_with("3.200 G"));
        assert!(format_rate(12.0, "B/s").starts_with("12.000 "));
    }
}
