//! Figure 2 — propagation pattern of soft errors at different locations.
//!
//! Reproduces the paper's worked example exactly: N = 158, nb = 32, one
//! soft error injected between iterations 1 and 2 of the (non-fault-
//! tolerant) hybrid reduction, at the paper's three coordinates:
//!
//! * `(53, 16)`  — Area 3 (Q storage):     stays a single wrong element;
//! * `(31, 127)` — Area 1 (upper trailing): pollutes one row of `H`;
//! * `(63, 127)` — Area 2 (lower trailing): pollutes nearly everything
//!   right of the frontier in both `H` and `Q`.
//!
//! Output: per-location polluted-element counts and an ASCII heat map of
//! the |difference| between the fault-free and faulty packed results.

use ft_bench::{polluted_count, polluted_rows, render_heatmap, Args, Table};
use ft_fault::{classify, Fault, FaultPlan, Region};
use ft_hessenberg::{gehrd_hybrid, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_matrix::Matrix;

fn run(a: &Matrix, nb: usize, plan: &mut FaultPlan) -> Matrix {
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    gehrd_hybrid(a, &HybridConfig { nb }, &mut ctx, plan)
        .result
        .expect("full mode returns a result")
        .packed
}

fn main() {
    let args = Args::from_env();
    let n = 158;
    let nb = args.nb.unwrap_or(32);
    let inject_iter = 1; // after iteration 1, before iteration 2 (paper)
    let frontier = inject_iter * nb;
    let a = ft_matrix::random::uniform(n, n, args.seed);

    println!(
        "Figure 2 — error propagation, N = {n}, nb = {nb}, fault after iteration {inject_iter}\n"
    );

    let clean = run(&a, nb, &mut FaultPlan::none());

    let cases: [(usize, usize); 3] = [(53, 16), (31, 127), (63, 127)];
    let tiny = 1e-12;

    let mut summary = Table::new(vec![
        "location",
        "region",
        "polluted elements",
        "polluted rows",
        "pattern",
    ]);

    for &(row, col) in &cases {
        let region = classify(n, frontier, row, col);
        let mut plan = FaultPlan::one(inject_iter, Fault::add(row, col, 1.0));
        let dirty = run(&a, nb, &mut plan);
        assert_eq!(plan.applied().len(), 1, "fault must have been injected");

        // Compare the *mathematical* results: H plus Q storage — i.e. the
        // packed output directly (both hold the same representation).
        let diff = dirty.diff(&clean);
        let count = polluted_count(&diff, tiny);
        let rows = polluted_rows(&diff, tiny);
        let pattern = match region {
            Region::Area3 | Region::FinishedH => "single element (no propagation)",
            Region::Area1 => "row-wise (one row of H polluted)",
            Region::Area2 => "trailing-matrix-wide pollution",
        };
        summary.row(vec![
            format!("({row}, {col})"),
            region.label().to_string(),
            count.to_string(),
            rows.to_string(),
            pattern.to_string(),
        ]);

        println!("--- error at ({row}, {col}) in {} ---", region.label());
        println!("{}", render_heatmap(&diff, 52, tiny));
    }

    println!("{}", summary.render());
    println!("\n(legend: '·' zero, digits = decades of |difference| above {tiny:.0e}, '#' huge)");
}
