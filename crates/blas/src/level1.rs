//! Level-1 BLAS: vector–vector operations.
//!
//! Contiguous-slice versions are the workhorses (columns of a column-major
//! matrix are contiguous); `_strided` variants cover rows (stride = `lda`).

use crate::flops::{model, record};

/// Dot product `xᵀy`. Panics on length mismatch.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "dot: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    record(model::dot(x.len()));
    // Four-way unrolled accumulation: faster and slightly more accurate than
    // a single running sum (partial sums reduce error growth).
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Dot product over strided vectors: `Σ x[i·incx] · y[i·incy]`, `n` terms.
pub fn dot_strided(n: usize, x: &[f64], incx: usize, y: &[f64], incy: usize) -> f64 {
    assert!(incx > 0 && incy > 0, "dot_strided: zero stride");
    if n > 0 {
        assert!(x.len() > (n - 1) * incx, "dot_strided: x too short");
        assert!(y.len() > (n - 1) * incy, "dot_strided: y too short");
    }
    record(model::dot(n));
    let mut s = 0.0;
    for i in 0..n {
        s += x[i * incx] * y[i * incy];
    }
    s
}

/// `y ← αx + y`. Panics on length mismatch.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    record(model::axpy(x.len()));
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Strided `y[i·incy] ← α·x[i·incx] + y[i·incy]` for `n` terms.
pub fn axpy_strided(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
    assert!(incx > 0 && incy > 0, "axpy_strided: zero stride");
    if n > 0 {
        assert!(x.len() > (n - 1) * incx, "axpy_strided: x too short");
        assert!(y.len() > (n - 1) * incy, "axpy_strided: y too short");
    }
    record(model::axpy(n));
    for i in 0..n {
        y[i * incy] += alpha * x[i * incx];
    }
}

/// `x ← αx`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    record(x.len() as u64);
    for v in x {
        *v *= alpha;
    }
}

/// `y ← x`. Panics on length mismatch.
pub fn copy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// Swaps the contents of two equal-length vectors.
pub fn swap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "swap: length mismatch");
    x.swap_with_slice(y);
}

/// Euclidean norm with overflow/underflow-safe scaling (LAPACK `dnrm2`).
pub fn nrm2(x: &[f64]) -> f64 {
    record(model::dot(x.len()));
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let absv = v.abs();
            if scale < absv {
                ssq = 1.0 + ssq * (scale / absv).powi(2);
                scale = absv;
            } else {
                ssq += (absv / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Sum of absolute values.
pub fn asum(x: &[f64]) -> f64 {
    record(x.len() as u64);
    x.iter().map(|v| v.abs()).sum()
}

/// Index of the element with the largest absolute value (first on ties);
/// `None` for an empty vector.
pub fn iamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut bestv = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v.abs() > bestv {
            best = i;
            bestv = v.abs();
        }
    }
    Some(best)
}

/// Sum of elements (plain accumulation). Used by the checksum encoders.
pub fn sum(x: &[f64]) -> f64 {
    record(x.len().saturating_sub(1) as u64);
    x.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // length > 4 exercises the unrolled path + tail
        let x: Vec<f64> = (1..=7).map(|v| v as f64).collect();
        let y = vec![1.0; 7];
        assert_eq!(dot(&x, &y), 28.0);
    }

    #[test]
    fn dot_strided_picks_every_kth() {
        let x = [1.0, -9.0, 2.0, -9.0, 3.0];
        let y = [1.0, 1.0, 1.0];
        assert_eq!(dot_strided(3, &x, 2, &y, 1), 6.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn axpy_strided_updates() {
        let mut y = [0.0; 5];
        axpy_strided(3, 1.0, &[1.0, 2.0, 3.0], 1, &mut y, 2);
        assert_eq!(y, [1.0, 0.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn scal_copy_swap() {
        let mut x = [1.0, -2.0];
        scal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
        let mut y = [0.0, 0.0];
        copy(&x, &mut y);
        assert_eq!(y, x);
        let mut z = [7.0, 8.0];
        swap(&mut y, &mut z);
        assert_eq!(y, [7.0, 8.0]);
        assert_eq!(z, [-3.0, 6.0]);
    }

    #[test]
    fn nrm2_safe_scaling() {
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        assert_eq!(nrm2(&[]), 0.0);
        // Would overflow a naive sum of squares.
        let big = 1e200;
        assert!((nrm2(&[big, big]) - big * 2.0f64.sqrt()).abs() / big < 1e-14);
        // Would underflow a naive sum of squares.
        let small = 1e-200;
        assert!((nrm2(&[small, small]) - small * 2.0f64.sqrt()).abs() / small < 1e-14);
    }

    #[test]
    fn asum_iamax() {
        assert_eq!(asum(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[]), None);
        // first index wins ties
        assert_eq!(iamax(&[2.0, -2.0]), Some(0));
    }

    #[test]
    fn flop_recording() {
        let g = crate::flops::FlopGuard::new();
        let _ = dot(&[1.0; 10], &[2.0; 10]);
        assert_eq!(g.count(), 19);
        let mut y = [0.0; 10];
        axpy(1.0, &[1.0; 10], &mut y);
        assert_eq!(g.count(), 39);
    }
}
