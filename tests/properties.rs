//! Property-based tests on the workspace's core invariants:
//!
//! * Theorem 1 of the paper — checksum validity is preserved by the
//!   extended two-sided block updates — checked on random matrices,
//!   panel positions and widths;
//! * reverse computation round-trips;
//! * detection fires for perturbations above threshold and localization
//!   pinpoints them;
//! * BLAS/LAPACK algebraic identities that everything above rests on.

use ft_hess_repro::blas::Trans;
use ft_hess_repro::hessenberg::encode::{extend_v, extend_y, ExtMatrix};
use ft_hess_repro::hessenberg::recovery::locate_errors;
use ft_hess_repro::hessenberg::reverse::{
    left_update_ext, reverse_left_update_ext, reverse_right_update_ext, right_update_ext,
};
use ft_hess_repro::lapack::lahr2_within;
use ft_hess_repro::matrix::Matrix;
use proptest::prelude::*;

/// Strategy: (n, k = 0, ib, seed) — the first panel of an n×n problem.
///
/// `k = 0` is the only *synthetically constructible* mid-factorization
/// state: for `k > 0` the columns left of the panel must already be
/// reduced (otherwise the left update mathematically touches them), which
/// requires running the whole driver — and the driver-level tests cover
/// exactly that.
fn panel_scenario() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (8usize..40, any::<u64>()).prop_flat_map(|(n, seed)| {
        (2usize..=(n - 2).min(8), Just(n), Just(seed))
            .prop_map(move |(ib, n, seed)| (n, 0, ib, seed))
    })
}

/// Builds a genuine mid-factorization update set, factorizing the panel
/// **in place** on the extended matrix exactly as the driver does.
fn build_updates(n: usize, k: usize, ib: usize, seed: u64) -> (ExtMatrix, Matrix, Matrix, Matrix) {
    let a = ft_hess_repro::matrix::random::uniform(n, n, seed);
    let mut ax = ExtMatrix::encode(&a);
    let panel = lahr2_within(ax.raw_mut(), n, k, ib);
    let seg: Vec<f64> = (k + 1..n).map(|j| ax.chk_row(j)).collect();
    let yx = extend_y(&panel.y, &seg, &panel.v, &panel.t);
    let vx = extend_v(&panel.v);
    (ax, yx, vx, panel.t)
}

/// Theorem 1 invariant for one `(n, k, ib, seed)` scenario; shared by the
/// property below and the pinned regression case.
fn check_theorem1(n: usize, k: usize, ib: usize, seed: u64) -> Result<(), String> {
    let (mut ax, yx, vx, t) = build_updates(n, k, ib, seed);
    right_update_ext(&mut ax, k, ib, &yx, &vx);
    let _w = left_update_ext(&mut ax, k, ib, &vx, &t);

    // Validity over the trailing columns (the panel columns' storage
    // switched representation and is re-checksummed by the driver).
    let tol = 1e-10 * (n as f64);
    for j in (k + ib)..n {
        let colsum: f64 = ax.raw().col(j)[..n].iter().sum();
        if (colsum - ax.chk_row(j)).abs() >= tol {
            return Err(format!(
                "column checksum {j}: {} vs {}",
                colsum,
                ax.chk_row(j)
            ));
        }
    }
    // Row checksums: the mathematical row sums must match the maintained
    // checksum column for every row — the full strength of Theorem 1. In
    // this synthetic scenario only the panel columns k..k+ib were reduced
    // (the driver always reduces 0..k first), so the Hessenberg mask
    // applies to exactly those columns.
    let chk = ax.chk_col();
    for (i, &chki) in chk.iter().enumerate() {
        let mut rs = 0.0;
        for j in 0..n {
            let masked = (k..k + ib).contains(&j) && i > j + 1;
            if !masked {
                rs += ax.raw()[(i, j)];
            }
        }
        if (rs - chki).abs() >= tol {
            return Err(format!("row checksum {i}: {} vs {}", rs, chki));
        }
    }
    Ok(())
}

/// Reversal round-trip invariant for one `(n, k, ib, seed)` scenario.
fn check_reversal(n: usize, k: usize, ib: usize, seed: u64) -> Result<(), String> {
    let (ax0, yx, vx, t) = build_updates(n, k, ib, seed);
    let mut ax = ax0.clone();
    right_update_ext(&mut ax, k, ib, &yx, &vx);
    let w = left_update_ext(&mut ax, k, ib, &vx, &t);
    reverse_left_update_ext(&mut ax, k, ib, &vx, &t, &w);
    reverse_right_update_ext(&mut ax, k, ib, &yx, &vx);
    for j in (k + ib)..=n {
        for i in 0..=n {
            let d = (ax.raw()[(i, j)] - ax0.raw()[(i, j)]).abs();
            if d >= 1e-10 {
                return Err(format!("({i},{j}) differs by {d}"));
            }
        }
    }
    Ok(())
}

/// Pinned replay of the checked-in proptest regression
/// `tests/properties.proptest-regressions`:
/// `(n, k, ib, seed) = (8, 0, 3, 5223378419537523)` — the small-`ib`
/// panel path through `extend_y` and the extended two-sided updates.
#[test]
fn regression_small_ib_panel_8_0_3_5223378419537523() {
    let (n, k, ib, seed) = (8, 0, 3, 5223378419537523u64);
    check_theorem1(n, k, ib, seed).unwrap();
    check_reversal(n, k, ib, seed).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: after the extended right + left updates, the checksum
    /// column still equals the row sums and the checksum row the column
    /// sums *of the updated trailing region*.
    #[test]
    fn theorem1_checksums_survive_block_updates((n, k, ib, seed) in panel_scenario()) {
        let r = check_theorem1(n, k, ib, seed);
        prop_assert!(r.is_ok(), "({n},{k},{ib},{seed}): {}", r.unwrap_err());
    }

    /// Reversal restores the trailing + checksum region to the pre-update
    /// state (up to one rounding of the add/sub pair).
    #[test]
    fn reversal_roundtrip((n, k, ib, seed) in panel_scenario()) {
        let r = check_reversal(n, k, ib, seed);
        prop_assert!(r.is_ok(), "({n},{k},{ib},{seed}): {}", r.unwrap_err());
    }

    /// A perturbation anywhere in the (unreduced) matrix is located at
    /// exactly its coordinates with its exact magnitude.
    #[test]
    fn localization_is_exact(
        n in 8usize..48,
        seed in any::<u64>(),
        delta in prop_oneof![0.001f64..100.0, -100.0f64..-0.001],
    ) {
        let a = ft_hess_repro::matrix::random::uniform(n, n, seed);
        let mut ax = ExtMatrix::encode(&a);
        let (i, j) = ((seed as usize) % n, (seed as usize / 7) % n);
        let old = ax.raw()[(i, j)];
        ax.raw_mut()[(i, j)] = old + delta;
        let out = locate_errors(&ax, 0, 1e-9);
        prop_assert!(out.resolved);
        prop_assert_eq!(out.errors.len(), 1);
        prop_assert_eq!((out.errors[0].row, out.errors[0].col), (i, j));
        prop_assert!((out.errors[0].delta - delta).abs() < 1e-9 * delta.abs().max(1.0));
    }

    /// GEMM distributes over addition: A(B + C) = AB + AC — checked across
    /// the blocked kernel used by the updates.
    #[test]
    fn gemm_distributivity(m in 1usize..20, n in 1usize..20, kk in 1usize..20, seed in any::<u64>()) {
        let a = ft_hess_repro::matrix::random::uniform(m, kk, seed);
        let b = ft_hess_repro::matrix::random::uniform(kk, n, seed ^ 1);
        let c = ft_hess_repro::matrix::random::uniform(kk, n, seed ^ 2);
        let mut bc = b.clone();
        bc.axpy_matrix(1.0, &c);

        let mut left = Matrix::zeros(m, n);
        ft_hess_repro::blas::gemm(Trans::No, Trans::No, 1.0, &a.as_view(), &bc.as_view(), 0.0, &mut left.as_view_mut());
        let mut right = Matrix::zeros(m, n);
        ft_hess_repro::blas::gemm(Trans::No, Trans::No, 1.0, &a.as_view(), &b.as_view(), 0.0, &mut right.as_view_mut());
        ft_hess_repro::blas::gemm(Trans::No, Trans::No, 1.0, &a.as_view(), &c.as_view(), 1.0, &mut right.as_view_mut());
        prop_assert!(ft_hess_repro::matrix::max_abs_diff(&left, &right) < 1e-10);
    }

    /// Householder reflectors preserve the 2-norm.
    #[test]
    fn reflectors_preserve_norm(len in 2usize..30, seed in any::<u64>()) {
        let src = ft_hess_repro::matrix::random::uniform(len, 1, seed);
        let x: Vec<f64> = src.col(0).to_vec();
        let norm0 = ft_hess_repro::blas::nrm2(&x);
        let mut tail = x[1..].to_vec();
        let r = ft_hess_repro::lapack::larfg(x[0], &mut tail);
        // After reflection the vector is [beta, 0, ..., 0].
        prop_assert!((r.beta.abs() - norm0).abs() < 1e-12 * norm0.max(1.0));
    }

    /// The full FT factorization is similarity-preserving: the trace of H
    /// equals the trace of A even when an error strikes and is repaired.
    #[test]
    fn trace_preserved_under_fault(seed in any::<u64>()) {
        use ft_hess_repro::prelude::*;
        let n = 40;
        let a = ft_hess_repro::matrix::random::uniform(n, n, seed);
        let trace0: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let fault_row = 20 + (seed as usize % 15);
        let mut plan = FaultPlan::one(1, Fault::add(fault_row, 30, 0.5));
        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
        let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(8), &mut ctx, &mut plan);
        let h = out.result.unwrap().h();
        let trace1: f64 = (0..n).map(|i| h[(i, i)]).sum();
        prop_assert!((trace0 - trace1).abs() < 1e-10, "{trace0} vs {trace1}");
    }
}
