//! Platform simulation walkthrough: where the time goes in the hybrid
//! pipeline, and what fault tolerance adds — the per-resource view behind
//! Figure 6's single overhead number.
//!
//! Run with: `cargo run --release --example hybrid_overhead`

use ft_hess_repro::matrix::Matrix;
use ft_hess_repro::prelude::*;

fn main() {
    let nb = 32;
    println!("hybrid platform simulation, nb = {nb} (timing-only mode)\n");

    for &n in &[1022usize, 4030, 10110] {
        let a = Matrix::zeros(n, n);

        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
        let base = gehrd_hybrid(&a, &HybridConfig { nb }, &mut ctx, &mut FaultPlan::none());

        let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
        let ft = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut FaultPlan::none());

        let overhead = 100.0 * (ft.report.sim_seconds - base.sim_seconds) / base.sim_seconds;

        println!("== N = {n} ==");
        println!(
            "  MAGMA-style hybrid: {:.3} s ({:.1} GFLOP/s)",
            base.sim_seconds,
            base.gflops()
        );
        println!(
            "  FT-Hess:            {:.3} s ({:.1} GFLOP/s)  →  overhead {overhead:.2}%",
            ft.report.sim_seconds,
            ft.report.gflops()
        );
        println!(
            "  baseline resource breakdown:\n{}",
            indent(&base.stats.summary())
        );
        println!(
            "  FT resource breakdown:\n{}",
            indent(&ft.report.stats.summary())
        );
    }
    println!(
        "note: the FT host-side extra work (Q checksums) hides under device\n\
         compute — compare HostVector busy time against the makespan delta."
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
