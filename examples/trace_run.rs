//! Emits a chrome://tracing timeline of one faulty FT-Hessenberg run —
//! the zero→aha demo of the `ft-trace` observability layer.
//!
//! Run with:
//!
//! ```text
//! FT_TRACE=chrome:trace.json FT_BLAS_BACKEND=threaded:4 \
//!     cargo run --release --example trace_run
//! ```
//!
//! then open `trace.json` in `chrome://tracing` (or Perfetto). Process 1
//! holds the wall-clock spans (`ft.*` phases, `gehrd.*`/`lahr2` panel
//! internals, `pool.*` dispatch); process 2 holds the simulated-platform
//! timeline (host lane 0, device streams on lanes 1+). When `FT_TRACE`
//! is unset the example defaults to `chrome:trace.json` so it always
//! produces an artifact.

use ft_hess_repro::prelude::*;
use ft_hess_repro::trace;

fn main() {
    // Default to a chrome trace when the caller didn't pick a sink.
    if trace::env_knob::raw("FT_TRACE").is_none() {
        trace::set_mode(trace::TraceMode::Chrome("trace.json".into()));
    }

    let n = 256;
    let nb = 32;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 7);

    // Two transient faults in different panel iterations: one in the
    // trailing matrix, one near the diagonal.
    let mut plan = FaultPlan::new(vec![
        ScheduledFault {
            iteration: 2,
            phase: Phase::IterationStart,
            fault: Fault::add(100, 180, 1.0),
        },
        ScheduledFault {
            iteration: 5,
            phase: Phase::IterationStart,
            fault: Fault::add(170, 171, 0.5),
        },
    ]);

    let cfg = FtConfig::with_nb(nb);
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx, &mut plan);
    let report = &out.report;

    println!(
        "ft_gehrd_hybrid: n={n} nb={nb} backend={:?} -> {} recoveries, {} corrected elements",
        cfg.backend,
        report.recoveries.len(),
        report.corrections()
    );
    println!(
        "wall {:.1} ms, simulated {:.3} s ({:.1} GFLOP/s simulated)",
        report.wall_seconds * 1e3,
        report.sim_seconds,
        report.gflops()
    );

    if !report.phases.is_empty() {
        println!("\nper-phase wall-clock breakdown (paper Fig. 6 decomposition):");
        for (name, secs) in report.phases.rows() {
            println!("  {name:<10} {:>9.3} ms", secs * 1e3);
        }
        println!(
            "  {:<10} {:>9.3} ms ({:.1}% of wall is FT overhead)",
            "total",
            report.phases.total() * 1e3,
            100.0 * report.phases.ft_overhead() / report.wall_seconds.max(1e-12)
        );
    }

    println!("\nregistry counters:");
    for (name, value) in trace::counters() {
        println!("  {name:<22} {value}");
    }

    match trace::finish() {
        Ok(Some(path)) => println!("\ntrace written to {}", path.display()),
        Ok(None) => println!("\nFT_TRACE sink disabled; no trace file written"),
        Err(e) => {
            eprintln!("failed to write trace: {e}");
            std::process::exit(1);
        }
    }

    let f = out.result.expect("full mode returns the factorization");
    assert!(f.h().is_upper_hessenberg());
}
