//! FTC012 — the metric-name registry is bidirectional.
//!
//! FTC006 (scan.rs) checks the forward direction: every name a call
//! site uses must be declared in `crates/trace/src/names.rs`. This rule
//! closes the loop: every *declared* name must have at least one
//! non-test usage site of the matching kind. A declared-but-never-
//! emitted metric is worse than dead code — dashboards and alert rules
//! built on it read as "flatlined at zero", which in a fault-injection
//! pipeline looks exactly like "no faults detected".

use super::Analysis;
use crate::Finding;
use std::collections::BTreeSet;

/// Runs FTC012.
pub fn run(a: &Analysis<'_>, findings: &mut Vec<Finding>) {
    if a.ctx.registry.declared.is_empty() {
        return;
    }
    // Every non-test usage site, as (kind, name).
    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for (fi, fm) in a.files.iter().enumerate() {
        let toks = &fm.lexed.toks;
        for k in 0..toks.len() {
            let Some((kind, name_tok)) = super::scan::metric_name_at(toks, k) else {
                continue;
            };
            if a.tok_in_test(fi, k) {
                continue;
            }
            used.insert((kind.to_string(), name_tok.text.clone()));
        }
    }
    for (kind, name, line) in &a.ctx.registry.declared {
        if used.contains(&(kind.clone(), name.clone())) {
            continue;
        }
        findings.push(Finding {
            path: a.ctx.names_rel.clone(),
            line: *line,
            col: 1,
            rule: "FTC012",
            message: format!("{kind} \"{name}\" is declared but never emitted from non-test code"),
            hint: "a declared-but-silent metric reads as a flatlined series; delete \
                   the registry row or emit it from the subsystem that owns it",
        });
    }
}
