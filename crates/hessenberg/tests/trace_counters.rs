//! End-to-end trace contract for the FT driver: a known 2-fault campaign
//! produces exact registry-counter deltas, every FT phase emits a span
//! when collection is on, and a run with tracing off still recovers while
//! writing nothing to the span sink.
//!
//! These tests share process-global trace state (`ft_trace::set_mode`),
//! so each one takes `TRACE_LOCK` to serialize against its siblings.

use ft_fault::{Fault, FaultPlan, Phase, ScheduledFault};
use ft_hessenberg::{ft_gehrd_hybrid, FtConfig, FtOutcome};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_trace::TraceMode;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

const N: usize = 160;
const NB: usize = 32;

/// Two single-element transient faults in different panel iterations —
/// both inside the trailing matrix, so the driver detects, locates and
/// corrects each one on-line.
fn two_fault_plan() -> FaultPlan {
    FaultPlan::new(vec![
        ScheduledFault {
            iteration: 1,
            phase: Phase::IterationStart,
            fault: Fault::add(60, 80, 1.0),
        },
        ScheduledFault {
            iteration: 3,
            phase: Phase::IterationStart,
            fault: Fault::add(120, 130, 0.7),
        },
    ])
}

fn run_campaign() -> FtOutcome {
    let a = ft_matrix::random::uniform(N, N, 99);
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    ft_gehrd_hybrid(&a, &FtConfig::with_nb(NB), &mut ctx, &mut two_fault_plan())
}

#[test]
fn two_fault_campaign_counters_are_exact() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ft_trace::set_mode(TraceMode::Off);

    let recoveries_before = ft_trace::counter("ft.recoveries").get();
    let corrections_before = ft_trace::counter("ft.corrections").get();

    let out = run_campaign();

    // The counters move in lock-step with the report: one increment per
    // RecoveryEvent, `fixes.len()` per correction pass.
    assert_eq!(
        out.report.recoveries.len(),
        2,
        "{:?}",
        out.report.recoveries
    );
    assert_eq!(out.report.corrections(), 2);
    assert_eq!(
        ft_trace::counter("ft.recoveries").get() - recoveries_before,
        out.report.recoveries.len() as u64
    );
    assert_eq!(
        ft_trace::counter("ft.corrections").get() - corrections_before,
        out.report.corrections() as u64
    );
    // And the run actually survived.
    assert!(out.result.unwrap().h().is_upper_hessenberg());
}

#[test]
fn faulty_run_emits_a_span_for_every_ft_phase() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ft_trace::set_mode(TraceMode::Summary);
    let mark = ft_trace::mark();

    let out = run_campaign();

    let tid = ft_trace::current_tid();
    let events = ft_trace::events_since(mark);
    ft_trace::set_mode(TraceMode::Off);
    let _ = ft_trace::take_events();

    let ft_names: Vec<&str> = events
        .iter()
        .filter(|e| e.cat == "wall" && e.tid == tid && e.name.starts_with("ft."))
        .map(|e| e.name)
        .collect();
    for phase in [
        "ft.encode",
        "ft.panel",
        "ft.trailing",
        "ft.detect",
        "ft.reverse",
        "ft.locate",
        "ft.correct",
    ] {
        assert!(
            ft_names.contains(&phase),
            "missing span {phase} in a faulty run; saw {ft_names:?}"
        );
    }

    // The per-phase breakdown attached to the report is built from those
    // same disjoint leaf spans: it must account for most of the run
    // without ever exceeding it.
    let ph = &out.report.phases;
    assert!(!ph.is_empty());
    assert!(ph.total() > 0.0);
    assert!(
        ph.total() <= out.report.wall_seconds,
        "disjoint leaf phases cannot sum past wall-clock: {} vs {}",
        ph.total(),
        out.report.wall_seconds
    );
    assert!(
        ph.total() >= 0.5 * out.report.wall_seconds,
        "phase breakdown should cover the bulk of the run: {} of {}",
        ph.total(),
        out.report.wall_seconds
    );
    assert!(ph.ft_overhead() >= 0.0);
}

#[test]
fn trace_off_run_recovers_with_zero_span_sink_writes() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ft_trace::set_mode(TraceMode::Off);

    let events_before = ft_trace::span_event_count();
    let out = run_campaign();

    assert_eq!(
        ft_trace::span_event_count(),
        events_before,
        "FT_TRACE off must not push span events from the FT driver"
    );
    // No collection → no breakdown, but the algorithm is unaffected.
    assert!(out.report.phases.is_empty());
    assert_eq!(out.report.recoveries.len(), 2);
    assert!(out.result.unwrap().h().is_upper_hessenberg());
}
