//! The workspace lock-acquisition order.
//!
//! Every `Mutex` in the concurrency crates (`ft-serve`, `ft-blas`) is
//! listed here with a rank; a thread may only acquire a lock while
//! holding locks of strictly *lower* rank. `ft-check` (rule FTC009)
//! enforces both halves statically: an unlisted `Mutex` declaration
//! fails the build, and so does any function body that acquires against
//! the declared order. The loom models (`DESIGN.md` §11.2 —
//! `loom_queue`, `loom_oneshot`, `loom_latch`, `loom_async_dispatch`,
//! `loom_recorder`) check the dynamic side of the same invariant; this
//! table is the piece they cannot see: the *cross-component* order when
//! one thread holds locks from two components at once.
//!
//! Rank bands group components so new locks slot in without renumbering:
//! 10s = admission queue, 20s = oneshot rendezvous, 30s = loadgen
//! aggregation, 40s = blas pool, 50s = blas latch. Today no code path
//! nests across bands (each component releases before calling into the
//! next); the order still has to be total so that FTC009 can reject the
//! first change that breaks that.

/// `(file-path suffix, field name, rank)` for every `Mutex` in scope.
///
/// The path is matched as a suffix of the repo-relative file path, so
/// entries stay valid if crates move under a new directory root.
pub const LOCK_ORDER: &[(&str, &str, u32)] = &[
    ("crates/serve/src/queue.rs", "inner", 10),
    ("crates/serve/src/oneshot.rs", "slot", 20),
    ("crates/serve/src/loadgen.rs", "outcomes", 30),
    ("crates/serve/src/loadgen.rs", "latency", 31),
    ("crates/blas/src/pool.rs", "state", 40),
    ("crates/blas/src/latch.rs", "panic", 50),
    ("crates/blas/src/latch.rs", "remaining", 51),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_strictly_increasing() {
        // A total order: later rows have strictly higher ranks, so the
        // table doubles as documentation of the global acquisition
        // sequence.
        for pair in LOCK_ORDER.windows(2) {
            assert!(
                pair[0].2 < pair[1].2,
                "LOCK_ORDER ranks must be strictly increasing: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn entries_are_unique_per_lock() {
        for (i, a) in LOCK_ORDER.iter().enumerate() {
            for b in &LOCK_ORDER[i + 1..] {
                assert!(!(a.0 == b.0 && a.1 == b.1), "duplicate lock entry: {a:?}");
            }
        }
    }
}
