//! Triangular solve with multiple right-hand sides:
//! `B ← α·op(T)⁻¹·B` (left) or `B ← α·B·op(T)⁻¹` (right).

use crate::backend;
use crate::flops::{model, record};
use crate::level1::axpy;
use crate::level2::trsv;
use crate::types::{Diag, Side, Trans, Uplo};
use ft_matrix::{MatView, MatViewMut};

/// Triangular solve in place. Panics on an exactly-zero diagonal for
/// `Diag::NonUnit`.
pub fn trsm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    a: &MatView<'_>,
    b: &mut MatViewMut<'_>,
) {
    let (m, n) = (b.rows(), b.cols());
    let order = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert!(
        a.rows() >= order && a.cols() >= order,
        "trsm: triangle {}x{} smaller than order {order}",
        a.rows(),
        a.cols()
    );
    record(model::trmm(
        order,
        if matches!(side, Side::Left) { n } else { m },
    ));
    if m == 0 || n == 0 {
        return;
    }
    if alpha != 1.0 {
        b.scale(alpha);
    }
    let unit = matches!(diag, Diag::Unit);
    // As in `trmm`, the threaded path only partitions independent columns
    // (left) or rows (right) around the shared serial solves, so the two
    // backends produce bit-identical results.
    let workers = backend::fork_threads(order * order * order.max(m.max(n)));

    match side {
        // Each column of B is an independent trsv: partition columns.
        Side::Left => {
            backend::for_each_col_chunk(b.rb_mut(), workers, |_, mut chunk| {
                trsm_left(uplo, trans, diag, a, &mut chunk);
            });
        }
        // The right-side column sweeps are elementwise per row: partition
        // rows and run the identical sweep on each row slice.
        Side::Right => {
            backend::for_each_row_chunk(b.rb_mut(), workers, |_, mut chunk| {
                trsm_right(uplo, trans, unit, a, &mut chunk);
            });
        }
    }
}

/// Serial `B ← op(T)⁻¹·B` on (a column slice of) `B`.
fn trsm_left(uplo: Uplo, trans: Trans, diag: Diag, a: &MatView<'_>, b: &mut MatViewMut<'_>) {
    for j in 0..b.cols() {
        trsv(uplo, trans, diag, a, b.col_mut(j));
    }
}

/// Serial `B ← B·op(T)⁻¹` on (a row slice of) `B`: solves X·op(T) = B
/// column by column; the sweep only depends on the column count, which
/// row slicing preserves.
fn trsm_right(uplo: Uplo, trans: Trans, unit: bool, a: &MatView<'_>, b: &mut MatViewMut<'_>) {
    let n = b.cols();
    let dinv = |a: &MatView<'_>, j: usize| -> f64 {
        let d = a.at(j, j);
        assert!(d != 0.0, "trsm: zero diagonal at {j}");
        1.0 / d
    };
    match (uplo, trans) {
        // X·U = B: X(:,j) = (B(:,j) − Σ_{k<j} X(:,k)·U(k,j)) / U(j,j),
        // ascending j.
        (Uplo::Upper, Trans::No) => {
            for j in 0..n {
                for k in 0..j {
                    sub_col(b, k, j, a.at(k, j));
                }
                if !unit {
                    scale_col(b, j, dinv(a, j));
                }
            }
        }
        // X·L = B: descending j, uses k > j.
        (Uplo::Lower, Trans::No) => {
            for j in (0..n).rev() {
                for k in (j + 1)..n {
                    sub_col(b, k, j, a.at(k, j));
                }
                if !unit {
                    scale_col(b, j, dinv(a, j));
                }
            }
        }
        // X·Uᵀ = B: Uᵀ(k,j) = U(j,k), lower-triangular pattern in (k,j):
        // descending j, uses k > j.
        (Uplo::Upper, Trans::Yes) => {
            for j in (0..n).rev() {
                for k in (j + 1)..n {
                    sub_col(b, k, j, a.at(j, k));
                }
                if !unit {
                    scale_col(b, j, dinv(a, j));
                }
            }
        }
        // X·Lᵀ = B: ascending j, uses k < j.
        (Uplo::Lower, Trans::Yes) => {
            for j in 0..n {
                for k in 0..j {
                    sub_col(b, k, j, a.at(j, k));
                }
                if !unit {
                    scale_col(b, j, dinv(a, j));
                }
            }
        }
    }
}

#[inline]
fn scale_col(b: &mut MatViewMut<'_>, j: usize, factor: f64) {
    for v in b.col_mut(j) {
        *v *= factor;
    }
}

/// `B(:,dst) −= factor · B(:,src)` for distinct columns.
#[inline]
fn sub_col(b: &mut MatViewMut<'_>, src: usize, dst: usize, factor: f64) {
    if factor == 0.0 {
        return;
    }
    debug_assert_ne!(src, dst);
    let cut = src.max(dst);
    let (mut left, mut right) = b.rb_mut().split_at_col(cut);
    if src < dst {
        axpy(-factor, left.col(src), right.col_mut(dst - cut));
    } else {
        axpy(-factor, right.col(src - cut), left.col_mut(dst));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::trmm;
    use ft_matrix::{max_abs_diff, Matrix};

    /// A well-conditioned triangle source: diagonally weighted random.
    fn tri_source(order: usize, seed: u64) -> Matrix {
        let mut a = ft_matrix::random::uniform(order, order, seed);
        for i in 0..order {
            a[(i, i)] = 2.0 + a[(i, i)].abs();
        }
        a
    }

    #[test]
    fn trsm_inverts_trmm_all_variants() {
        let m = 5;
        let n = 4;
        let b0 = ft_matrix::random::uniform(m, n, 31);
        for side in [Side::Left, Side::Right] {
            let order = if matches!(side, Side::Left) { m } else { n };
            let a = tri_source(order, 17);
            for uplo in [Uplo::Upper, Uplo::Lower] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        let mut b = b0.clone();
                        trmm(
                            side,
                            uplo,
                            trans,
                            diag,
                            1.0,
                            &a.as_view(),
                            &mut b.as_view_mut(),
                        );
                        trsm(
                            side,
                            uplo,
                            trans,
                            diag,
                            1.0,
                            &a.as_view(),
                            &mut b.as_view_mut(),
                        );
                        let err = max_abs_diff(&b, &b0);
                        assert!(
                            err < 1e-12,
                            "{side:?} {uplo:?} {trans:?} {diag:?}: roundtrip err {err}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_alpha_scales_solution() {
        let a = Matrix::identity(3);
        let b0 = ft_matrix::random::uniform(3, 2, 5);
        let mut b = b0.clone();
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            2.0,
            &a.as_view(),
            &mut b.as_view_mut(),
        );
        let mut expect = b0;
        expect.scale(2.0);
        assert!(max_abs_diff(&b, &expect) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn zero_diagonal_panics() {
        let mut a = Matrix::identity(2);
        a[(1, 1)] = 0.0;
        let mut b = Matrix::filled(2, 1, 1.0);
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            &a.as_view(),
            &mut b.as_view_mut(),
        );
    }
}
