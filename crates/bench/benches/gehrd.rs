//! Criterion bench: Hessenberg reduction variants — unblocked (`gehd2`)
//! vs blocked (`gehrd`) vs the simulated hybrid driver (Algorithm 2) —
//! plus the FT driver under the serial vs threaded level-3 backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ft_bench::{write_bench_json, Record};
use ft_blas::{active_simd_path, Backend};
use ft_fault::FaultPlan;
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_lapack::{gehd2, gehrd, GehrdConfig};
use std::time::Instant;

fn bench_gehrd(c: &mut Criterion) {
    let mut group = c.benchmark_group("gehrd");
    group.sample_size(10);
    for &n in &[96usize, 192] {
        let a = ft_matrix::random::uniform(n, n, 7);
        group.throughput(Throughput::Elements((10 * n * n * n / 3) as u64));

        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(gehd2(&mut w));
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked_nb32", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                std::hint::black_box(gehrd(
                    &mut w,
                    &GehrdConfig {
                        nb: 32,
                        nx: 4,
                        lookahead: false,
                    },
                ));
            });
        });
        group.bench_with_input(BenchmarkId::new("hybrid_sim", n), &n, |bench, _| {
            bench.iter(|| {
                let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
                let out = gehrd_hybrid(
                    &a,
                    &HybridConfig { nb: 32 },
                    &mut ctx,
                    &mut FaultPlan::none(),
                );
                std::hint::black_box(out.sim_seconds);
            });
        });
    }
    group.finish();
}

/// The FT driver's wall-clock time under the serial vs threaded level-3
/// backend. `n` and `nb` are sized so the trailing updates clear
/// `ft_blas::backend::PARALLEL_MIN_VOLUME` and the threaded backend
/// genuinely forks (the smoke run uses a smaller, sub-gate size).
fn bench_ft_backend(c: &mut Criterion) {
    let smoke = ft_bench::smoke();
    let (n, nb) = if smoke {
        (96usize, 16usize)
    } else {
        (384usize, 64usize)
    };
    let a = ft_matrix::random::uniform(n, n, 7);
    let mut group = c.benchmark_group("ft_gehrd_backend");
    group.sample_size(10);
    group.throughput(Throughput::Elements((10 * n * n * n / 3) as u64));
    for backend in [Backend::Serial, Backend::Threaded(4)] {
        let label = match backend {
            Backend::Serial => "serial".to_string(),
            Backend::Threaded(t) => format!("threaded{t}"),
        };
        let cfg = FtConfig {
            backend,
            ..FtConfig::with_nb(nb)
        };
        group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
            bench.iter(|| {
                let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
                let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx, &mut FaultPlan::none());
                std::hint::black_box(out.report.sim_seconds);
            });
        });
    }
    group.finish();
    // Direct wall-clock speedup report.
    let iters = if smoke { 1 } else { 2 };
    let time = |backend: Backend| {
        let cfg = FtConfig {
            backend,
            ..FtConfig::with_nb(nb)
        };
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
            let out = ft_gehrd_hybrid(&a, &cfg, &mut ctx, &mut FaultPlan::none());
            std::hint::black_box(out.report.sim_seconds);
        }
        t0.elapsed().as_secs_f64() / iters as f64
    };
    let ts = time(Backend::Serial);
    let tt = time(Backend::Threaded(4));
    println!(
        "ft_gehrd backend speedup @ n={n}, nb={nb}: serial {:.1} ms, threaded(4) {:.1} ms -> {:.2}x",
        ts * 1e3,
        tt * 1e3,
        ts / tt
    );
    // 10n³/3 flops for the reduction (Q formation excluded) — the shared
    // nominal-flop helper, not a re-derivation.
    let gflops = |secs: f64| ft_blas::gehrd_gflops(n, secs);
    // All records go through one write: `write_bench_json` replaces the
    // previous records of the same smoke-ness wholesale per call.
    let mut records = vec![
        Record::new()
            .str("kind", "ft_gehrd_backend")
            .int("n", n as u64)
            .int("nb", nb as u64)
            .num("serial_ms", ts * 1e3)
            .num("threaded4_ms", tt * 1e3)
            .num("speedup", ts / tt)
            .num("serial_gflops", gflops(ts))
            .num("threaded4_gflops", gflops(tt))
            .bool("smoke", smoke),
        phase_breakdown_record(&a, n, nb, smoke),
    ];
    records.extend(lookahead_records(smoke));
    write_bench_json("gehrd", &records);
}

fn cores() -> u64 {
    std::thread::available_parallelism()
        .map(|c| c.get() as u64)
        .unwrap_or(1)
}

/// Sequential vs lookahead-pipelined schedule of the plain blocked
/// reduction (`FT_GEHRD_LOOKAHEAD`), one record per size. Wall times are
/// the min over alternating runs; the overlap decomposition comes from a
/// separate traced run: `gehrd.overlap` is the slice of the next panel's
/// factorization hidden under the in-flight far update, `gehrd.panel` the
/// remainder that had to wait for the token, so
/// `overlap_efficiency = overlap / (overlap + panel)` is the fraction of
/// panel time the pipeline hid. DESIGN.md §8.2 bounds the hidden slice
/// structurally at one column's reduction prefix, and on a single-core
/// box the far workers and the panel prefix time-slice the same core —
/// so at `cores: 1` the honest expected reading is parity, not speedup
/// (same isa/cores-tag convention as BENCH_gemm.json).
fn lookahead_records(smoke: bool) -> Vec<Record> {
    let sizes: &[usize] = if smoke { &[128] } else { &[512, 1024] };
    let rounds = if smoke { 2 } else { 3 };
    let backend = Backend::Threaded(4);
    let mut recs = Vec::new();
    for &n in sizes {
        let nb = if n >= 512 { 64 } else { 16 };
        let a = ft_matrix::random::uniform(n, n, 7);
        let run = |lookahead: bool| {
            let cfg = GehrdConfig::with_nb(nb).with_lookahead(lookahead);
            let mut w = a.clone();
            let t0 = Instant::now();
            ft_blas::with_backend(backend, || std::hint::black_box(gehrd(&mut w, &cfg)));
            t0.elapsed().as_secs_f64()
        };
        let (mut ts, mut tl) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..rounds {
            ts = ts.min(run(false));
            tl = tl.min(run(true));
        }
        // Traced (unmeasured) run for the overlap decomposition.
        let prev_mode = ft_trace::mode();
        ft_trace::set_mode(ft_trace::TraceMode::Summary);
        let _ = ft_trace::take_events();
        run(true);
        ft_trace::set_mode(prev_mode);
        let events = ft_trace::take_events();
        let spans = ft_trace::totals(&events);
        let ms = |name: &str| {
            spans
                .iter()
                .find(|t| t.name == name)
                .map(|t| t.total_us / 1e3)
                .unwrap_or(0.0)
        };
        let (overlap, panel) = (ms("gehrd.overlap"), ms("gehrd.panel"));
        let eff = if overlap + panel > 0.0 {
            overlap / (overlap + panel)
        } else {
            0.0
        };
        println!(
            "gehrd lookahead @ n={n}, nb={nb}: sequential {:.1} ms, lookahead {:.1} ms -> {:.2}x \
             (overlap efficiency {:.2}, isa {}, {} cores)",
            ts * 1e3,
            tl * 1e3,
            ts / tl,
            eff,
            active_simd_path(),
            cores(),
        );
        recs.push(
            Record::new()
                .str("kind", "ft_gehrd_lookahead")
                .int("n", n as u64)
                .int("nb", nb as u64)
                .num("sequential_ms", ts * 1e3)
                .num("lookahead_ms", tl * 1e3)
                .num("speedup", ts / tl)
                .num("hidden_panel_ms", overlap)
                .num("exposed_panel_ms", panel)
                .num("overlap_efficiency", eff)
                .num("far_ms", ms("gehrd.far"))
                .num("near_ms", ms("gehrd.near"))
                .str("isa", active_simd_path())
                .int("cores", cores())
                .int("backend_threads", backend.threads() as u64)
                .bool("smoke", smoke),
        );
    }
    recs
}

/// One traced (unmeasured) run of the FT driver under the threaded
/// backend, with span collection forced on, producing the per-phase
/// wall-clock breakdown record embedded in BENCH_gehrd.json — the paper's
/// Figure 6 decomposition. The previous trace mode is restored afterwards
/// so the measured loops above stay un-instrumented.
fn phase_breakdown_record(a: &ft_matrix::Matrix, n: usize, nb: usize, smoke: bool) -> Record {
    let prev_mode = ft_trace::mode();
    ft_trace::set_mode(ft_trace::TraceMode::Summary);
    let cfg = FtConfig {
        backend: Backend::Threaded(4),
        ..FtConfig::with_nb(nb)
    };
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
    let out = ft_gehrd_hybrid(a, &cfg, &mut ctx, &mut FaultPlan::none());
    ft_trace::set_mode(prev_mode);
    let _ = ft_trace::take_events(); // drain: keep the shared sink bounded

    let ph = &out.report.phases;
    let wall = out.report.wall_seconds;
    let mut rec = Record::new()
        .str("kind", "ft_gehrd_phase_breakdown")
        .int("n", n as u64)
        .int("nb", nb as u64)
        .num("wall_ms", wall * 1e3)
        .num("phase_total_ms", ph.total() * 1e3)
        .num("phase_cover_ratio", ph.total() / wall.max(1e-12))
        .num("ft_overhead_ms", ph.ft_overhead() * 1e3)
        .num(
            "ft_overhead_pct",
            100.0 * ph.ft_overhead() / wall.max(1e-12),
        );
    for (name, secs) in ph.rows() {
        rec = rec.num(&format!("phase_{name}_ms"), secs * 1e3);
    }
    rec.bool("smoke", smoke)
}

criterion_group!(benches, bench_gehrd, bench_ft_backend);
criterion_main!(benches);
