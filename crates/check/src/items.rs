//! Item pass: function/impl/mod boundaries, attribute capture, test
//! regions, and `// ft-check:` marker comments, built on the
//! [`crate::lexer`] token stream.
//!
//! This is deliberately a *boundary* pass, not an AST: it finds where
//! functions start and end (by brace matching), which attributes and
//! marker comments they carry, which type an inherent method belongs
//! to, and which token ranges are test-gated. That is exactly the
//! information the semantic rules (FTC007–FTC012) need, and nothing
//! more. The old scanner's known hole — a `#[test]` fn outside a
//! `#[cfg(test)]` mod counted as library code because the line mask
//! only recognized `#[cfg(` — is closed here: `#[test]`, `#[cfg(test)]`
//! and `#[cfg(all(test, …))]` all produce test regions, attached to the
//! item they annotate regardless of line layout.

use crate::lexer::{Comment, Lexed, Tok};

/// One parsed function item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing inherent-impl type, when the fn is a method.
    pub self_ty: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub line: u32,
    /// 0-based column of the `fn` keyword.
    pub col: u32,
    /// First line of the item (its first attribute, or the `fn` line) —
    /// marker comments attach directly above this.
    pub start_line: u32,
    /// Attribute texts, delimiters stripped, tokens concatenated
    /// (`cfg(test)`, `target_feature(enable="avx2",enable="fma")`).
    pub attrs: Vec<String>,
    /// `true` when the fn is test-only: `#[test]`/`#[cfg(test)]` on the
    /// fn itself or any enclosing item.
    pub in_test: bool,
    /// `true` when the fn carries `#[target_feature(...)]`.
    pub target_feature: bool,
    /// `// ft-check: <marker>` annotations directly above the item.
    pub markers: Vec<String>,
    /// Token indices of the body's `{` and matching `}` (`None` for a
    /// bodiless trait-method declaration).
    pub body: Option<(usize, usize)>,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` otherwise.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// `true` when the item carries this `// ft-check:` marker.
    pub fn has_marker(&self, m: &str) -> bool {
        self.markers.iter().any(|x| x == m)
    }
}

/// All items of one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Functions, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Token-index ranges (inclusive) gated behind `#[cfg(test)]` or
    /// `#[test]`, covering the attribute through the item's last token.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileItems {
    /// `true` when token `idx` lies in a test-gated region.
    pub fn tok_in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// The innermost fn whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (k, f) in self.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if idx > open && idx < close {
                    let better = match best {
                        Some(b) => {
                            let (bo, _) = self.fns[b].body.unwrap_or((0, usize::MAX));
                            open > bo
                        }
                        None => true,
                    };
                    if better {
                        best = Some(k);
                    }
                }
            }
        }
        best
    }
}

/// `true` when `attr` (concatenated token text) gates on `cfg(test)` —
/// `cfg(test)`, `cfg(all(test,loom))` — but not `cfg(not(test))`.
fn is_cfg_test(attr: &str) -> bool {
    attr.starts_with("cfg(") && contains_word(attr, "test") && !attr.contains("not(test")
}

/// Word-boundary containment over identifier characters.
fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let at = from + pos;
        let before = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before && after {
            return true;
        }
        from = at + word.len();
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Computes, for every `{` token, the index of its matching `}`.
fn match_braces(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut pairs = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                pairs[open] = Some(i);
            }
        }
    }
    pairs
}

/// Modifier keywords that may sit between an attribute and its item.
fn is_item_modifier(s: &str) -> bool {
    matches!(
        s,
        "pub" | "unsafe" | "const" | "async" | "extern" | "default" | "crate" | "in" | "super"
    )
}

/// Parses the token stream into items. Single forward pass plus brace
/// matching; never fails (unparseable stretches simply yield no items).
pub fn parse(lexed: &Lexed) -> FileItems {
    let toks = &lexed.toks;
    let pairs = match_braces(toks);
    let mut out = FileItems::default();
    // (body range, type name) per impl block, for method attribution.
    let mut impls: Vec<(usize, usize, String)> = Vec::new();

    struct Pending {
        texts: Vec<String>,
        first_line: u32,
        first_tok: usize,
    }
    let mut pending: Option<Pending> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Attribute: `#[...]` (outer) or `#![...]` (inner, ignored).
        if t.is_punct("#") {
            let (inner, open) = if toks.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                (true, i + 2)
            } else {
                (false, i + 1)
            };
            if toks.get(open).is_some_and(|t| t.is_punct("[")) {
                let mut depth = 0i32;
                let mut j = open;
                let mut text = String::new();
                while j < toks.len() {
                    let tj = &toks[j];
                    if tj.is_punct("[") {
                        depth += 1;
                        if depth > 1 {
                            text.push('[');
                        }
                    } else if tj.is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        text.push(']');
                    } else if depth >= 1 {
                        if tj.kind == crate::lexer::TokKind::Str {
                            text.push('"');
                            text.push_str(&tj.text);
                            text.push('"');
                        } else {
                            text.push_str(&tj.text);
                        }
                    }
                    j += 1;
                }
                if !inner {
                    let p = pending.get_or_insert(Pending {
                        texts: Vec::new(),
                        first_line: t.line,
                        first_tok: i,
                    });
                    p.texts.push(text);
                }
                i = j + 1;
                continue;
            }
        }
        if t.kind == crate::lexer::TokKind::Ident {
            match t.text.as_str() {
                "fn" => {
                    let Some(name_tok) = toks.get(i + 1) else {
                        i += 1;
                        continue;
                    };
                    if name_tok.kind != crate::lexer::TokKind::Ident {
                        // `fn(usize) -> usize` pointer type, not an item.
                        pending = None;
                        i += 1;
                        continue;
                    }
                    // Scan the signature for the body `{` or a `;`.
                    let mut j = i + 2;
                    let mut body = None;
                    while let Some(tj) = toks.get(j) {
                        if tj.is_punct("{") {
                            body = pairs[j].map(|close| (j, close));
                            break;
                        }
                        if tj.is_punct(";") {
                            break;
                        }
                        j += 1;
                    }
                    let p = pending.take();
                    let attrs = p.as_ref().map(|p| p.texts.clone()).unwrap_or_default();
                    let start_line = p.as_ref().map(|p| p.first_line).unwrap_or(t.line);
                    let attr_tok = p.as_ref().map(|p| p.first_tok).unwrap_or(i);
                    let own_test = attrs
                        .iter()
                        .any(|a| a == "test" || a.starts_with("test::") || is_cfg_test(a));
                    if own_test {
                        let end = body.map(|(_, c)| c).unwrap_or(j);
                        out.test_ranges.push((attr_tok, end));
                    }
                    out.fns.push(FnItem {
                        name: name_tok.text.clone(),
                        self_ty: None, // attributed below
                        line: t.line,
                        col: t.col,
                        start_line,
                        target_feature: attrs.iter().any(|a| a.starts_with("target_feature")),
                        attrs,
                        in_test: false, // computed below
                        markers: Vec::new(),
                        body,
                        fn_tok: i,
                    });
                    i += 1;
                }
                "impl" => {
                    let p = pending.take();
                    // Skip the generic parameter list, if any.
                    let mut j = i + 1;
                    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                        let mut depth = 0i32;
                        while let Some(tj) = toks.get(j) {
                            if tj.is_punct("<") {
                                depth += 1;
                            } else if tj.is_punct(">") && !(j > 0 && toks[j - 1].is_punct("-")) {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    // Self type: the ident after `for` when present, else
                    // the first type ident of the header.
                    let mut name = None;
                    let mut after_for = None;
                    let mut body_open = None;
                    let mut k = j;
                    while let Some(tk) = toks.get(k) {
                        if tk.is_punct("{") {
                            body_open = Some(k);
                            break;
                        }
                        if tk.is_punct(";") {
                            break;
                        }
                        if tk.kind == crate::lexer::TokKind::Ident {
                            if tk.text == "for" {
                                after_for = Some(k);
                            } else if name.is_none() && tk.text != "dyn" {
                                name = Some(tk.text.clone());
                            } else if let Some(fk) = after_for {
                                if k == fk + 1 {
                                    name = Some(tk.text.clone());
                                }
                            }
                        }
                        k += 1;
                    }
                    if let (Some(open), Some(n)) = (body_open, name) {
                        if let Some(close) = pairs[open] {
                            impls.push((open, close, n));
                            if p.as_ref()
                                .is_some_and(|p| p.texts.iter().any(|a| is_cfg_test(a)))
                            {
                                let start = p.as_ref().map(|p| p.first_tok).unwrap_or(i);
                                out.test_ranges.push((start, close));
                            }
                        }
                    }
                    i += 1;
                }
                "mod" | "struct" | "enum" | "trait" | "union" | "macro_rules" => {
                    // A cfg(test)-gated container puts its whole body in
                    // a test range.
                    let p = pending.take();
                    if p.as_ref()
                        .is_some_and(|p| p.texts.iter().any(|a| is_cfg_test(a)))
                    {
                        let mut j = i + 1;
                        while let Some(tj) = toks.get(j) {
                            if tj.is_punct("{") {
                                if let Some(close) = pairs[j] {
                                    let start = p.as_ref().map(|p| p.first_tok).unwrap_or(i);
                                    out.test_ranges.push((start, close));
                                }
                                break;
                            }
                            if tj.is_punct(";") {
                                break;
                            }
                            j += 1;
                        }
                    }
                    i += 1;
                }
                other if is_item_modifier(other) => {
                    // `pub`, `unsafe`, … may sit between attr and item.
                    i += 1;
                }
                _ => {
                    // Any other identifier ends a pending attribute run
                    // (it annotated a statement, not an item we track).
                    pending = None;
                    i += 1;
                }
            }
            continue;
        }
        // Punctuation between an attribute and its item (`pub(crate)`
        // parens) is tolerated; anything else is statement-level.
        if !(t.is_punct("(") || t.is_punct(")")) {
            pending = None;
        }
        i += 1;
    }

    // Method attribution: innermost impl whose body contains the fn.
    for f in &mut out.fns {
        let mut best: Option<&(usize, usize, String)> = None;
        for imp in &impls {
            if f.fn_tok > imp.0 && f.fn_tok < imp.1 {
                let tighter = best.map(|b| imp.0 > b.0).unwrap_or(true);
                if tighter {
                    best = Some(imp);
                }
            }
        }
        f.self_ty = best.map(|(_, _, n)| n.clone());
    }

    // in_test: own attrs or any enclosing test range.
    out.test_ranges.sort_unstable();
    let in_test: Vec<bool> = out.fns.iter().map(|f| out.tok_in_test(f.fn_tok)).collect();
    for (f, t) in out.fns.iter_mut().zip(in_test) {
        f.in_test = f.in_test || t;
    }

    // Marker comments: contiguous `//` block directly above the item's
    // first line (attributes included in "the item").
    for f in &mut out.fns {
        let mut line = f.start_line;
        while let Some(c) = comment_ending_at(&lexed.comments, line) {
            if let Some(m) = marker_of(c) {
                f.markers.push(m);
            }
            if c.line == 0 {
                break;
            }
            line = c.line;
        }
    }
    out
}

/// The comment whose last line is directly above `line`, if any.
fn comment_ending_at(comments: &[Comment], line: u32) -> Option<&Comment> {
    if line == 0 {
        return None;
    }
    comments.iter().find(|c| c.end_line + 1 == line)
}

/// Extracts `<marker>` from a `// ft-check: <marker>` comment.
fn marker_of(c: &Comment) -> Option<String> {
    let rest = c.text.trim().strip_prefix("ft-check:")?;
    let word = rest.split_whitespace().next()?;
    Some(word.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse(&lex(src))
    }

    #[test]
    fn finds_fns_with_attrs_and_bodies() {
        let it = items("#[inline]\npub fn alpha() { beta(); }\nfn beta() {}\nfn decl();\n");
        assert_eq!(it.fns.len(), 3);
        assert_eq!(it.fns[0].name, "alpha");
        assert_eq!(it.fns[0].attrs, vec!["inline"]);
        assert!(it.fns[0].body.is_some());
        assert!(it.fns[2].body.is_none());
    }

    #[test]
    fn test_attr_gates_the_fn_regardless_of_cfg() {
        // The old line-mask only saw `#[cfg(` — `#[test]` alone leaked.
        let it = items("#[test]\nfn t() { let x = 1; }\nfn lib() {}\n");
        assert!(it.fns[0].in_test, "plain #[test] must gate the fn");
        assert!(!it.fns[1].in_test);
    }

    #[test]
    fn cfg_test_mod_gates_everything_inside() {
        let it = items(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    fn helper() {}\n}\n",
        );
        assert!(!it.fns[0].in_test);
        assert!(it.fns[1].in_test, "helper inside cfg(test) mod");
    }

    #[test]
    fn not_test_is_not_a_test_gate() {
        let it = items("#[cfg(not(test))]\nfn real() {}\n");
        assert!(!it.fns[0].in_test);
    }

    #[test]
    fn multiline_attr_is_captured() {
        let it = items(
            "#[target_feature(\n    enable = \"avx2\",\n    enable = \"fma\"\n)]\nfn kern() {}\n",
        );
        assert!(it.fns[0].target_feature);
    }

    #[test]
    fn impl_methods_get_their_type() {
        let it = items(
            "struct Ring;\nimpl Ring {\n    fn record(&self) {}\n}\nimpl Drop for Ring {\n    fn drop(&mut self) {}\n}\nimpl<T> Holder<T> {\n    fn put(&self) {}\n}\n",
        );
        assert_eq!(it.fns[0].qual_name(), "Ring::record");
        assert_eq!(it.fns[1].qual_name(), "Ring::drop");
        assert_eq!(it.fns[2].qual_name(), "Holder::put");
    }

    #[test]
    fn markers_attach_through_attr_and_comment_runs() {
        let it =
            items("// ft-check: hot\n#[inline]\nfn tile() {}\n\n// unrelated\nfn other() {}\n");
        assert!(it.fns[0].has_marker("hot"));
        assert!(it.fns[1].markers.is_empty());
    }
}
