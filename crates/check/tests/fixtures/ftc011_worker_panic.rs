//! FTC011 fixture: a panicking call two hops from the worker-loop fn.

// ft-check: worker-loop
pub fn run_job(x: Option<u64>) -> u64 {
    step(x)
}

fn step(x: Option<u64>) -> u64 {
    finish(x)
}

fn finish(x: Option<u64>) -> u64 {
    x.unwrap()
}
