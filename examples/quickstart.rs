//! Quickstart: reduce a random matrix to Hessenberg form with the
//! fault-tolerant hybrid algorithm, inject a soft error mid-run, and
//! verify the result is still correct.
//!
//! Run with: `cargo run --release --example quickstart`

use ft_hess_repro::hessenberg::verify::ResidualReport;
use ft_hess_repro::prelude::*;

fn main() {
    let n = 256;
    let nb = 32;
    println!("FT-Hess quickstart: N = {n}, nb = {nb}");

    // A reproducible random input.
    let a = ft_hess_repro::matrix::random::uniform(n, n, 42);

    // The simulated hybrid platform (Table I of the paper).
    let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);

    // One soft error: a bit flip in the trailing matrix at the start of
    // iteration 3 — silent data corruption the algorithm must survive.
    let mut plan = FaultPlan::one(3, Fault::bitflip(140, 200, 50));

    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut plan);
    let report = &out.report;
    println!(
        "injected {} fault(s); detected {} episode(s); corrected {} element(s); \
         re-executed {} iteration(s)",
        report.injected.len(),
        report.recoveries.len(),
        report.corrections(),
        report.redone_iterations,
    );
    println!(
        "simulated time: {:.4} s  ({:.1} GFLOP/s)",
        report.sim_seconds,
        report.gflops()
    );

    // Verify: H upper Hessenberg, Q orthogonal, A = QHQᵀ.
    let f = out.result.expect("full mode returns the factorization");
    let h = f.h();
    let q = f.q();
    assert!(h.is_upper_hessenberg());
    let residuals = ResidualReport::compute(&a, &q, &h);
    println!(
        "residuals: |A - QHQ^T|_1/(N|A|_1) = {:.3e},  |QQ^T - I|_1/N = {:.3e}",
        residuals.factorization, residuals.orthogonality
    );
    assert!(
        residuals.acceptable(1e-12),
        "the factorization must survive the fault unharmed"
    );
    println!("OK: the soft error was detected, corrected, and left no trace.");
}
