//! Figure 6 — overhead of FT-Hess vs the fault-prone MAGMA hybrid.
//!
//! For every matrix size (the paper's N = 1022 … 10110 by default, on the
//! timing-only simulator) this reports, per fault area:
//!
//! * GFLOP/s of the baseline hybrid reduction and of FT-Hess (the two
//!   performance lines of Figure 6);
//! * the no-failure overhead (the blue line);
//! * the min–max overhead band when one fault strikes the given area at
//!   the Beginning / Middle / End of the factorization (the gray
//!   uncertainty interval).
//!
//! Use `--real` to run the (much slower) full-arithmetic mode on scaled
//! sizes as a cross-check — the simulated clocks are identical by
//! construction (asserted by unit tests).

use ft_bench::{paper_sizes, pct, scaled_sizes, Args, Table};
use ft_fault::{sample_in_region, Fault, FaultPlan, Moment, Phase, Region, ScheduledFault};
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx(mode: ExecMode) -> HybridCtx {
    HybridCtx::new(CostModel::k40c_sandy_bridge(), mode, 2)
}

fn main() {
    let args = Args::from_env();
    let mode = if args.real {
        ExecMode::Full
    } else {
        ExecMode::TimingOnly
    };
    let nb = args.nb.unwrap_or(32);
    let sizes = args.sizes.clone().unwrap_or_else(|| {
        if args.real && !args.full {
            scaled_sizes()
        } else {
            paper_sizes()
        }
    });
    let mut rng = StdRng::seed_from_u64(args.seed);

    println!("Figure 6 — FT-Hess overhead (nb = {nb}, mode = {mode:?}, sizes = {sizes:?})\n");

    for region in [Region::Area1, Region::Area2, Region::Area3] {
        let mut t = Table::new(vec![
            "N",
            "MAGMA Hess GF/s",
            "FT-Hess GF/s",
            "overhead (no fault)",
            "overhead (1 fault, min)",
            "overhead (1 fault, max)",
        ]);

        for &n in &sizes {
            let a = match mode {
                ExecMode::Full => ft_matrix::random::uniform(n, n, args.seed + n as u64),
                ExecMode::TimingOnly => Matrix::zeros(n, n),
            };
            let iters = (n - 2).div_ceil(nb);

            // Baseline (Algorithm 2).
            let mut c = ctx(mode);
            let base = gehrd_hybrid(&a, &HybridConfig { nb }, &mut c, &mut FaultPlan::none());

            // FT, no fault.
            let mut c = ctx(mode);
            let ft0 = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut c, &mut FaultPlan::none());
            let ov0 = (ft0.report.sim_seconds - base.sim_seconds) / base.sim_seconds;

            // FT with one fault in `region` at each moment.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for moment in Moment::ALL {
                let iteration = moment.iteration(iters).max(1);
                let k = (iteration * nb).min(n - 1);
                let Some((row, col)) = sample_in_region(n, k, region, &mut rng) else {
                    continue;
                };
                let mut plan = FaultPlan::new(vec![ScheduledFault {
                    iteration,
                    phase: Phase::IterationStart,
                    fault: Fault::add(row, col, 1e-2),
                }]);
                let mut c = ctx(mode);
                let ft = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut c, &mut plan);
                let ov = (ft.report.sim_seconds - base.sim_seconds) / base.sim_seconds;
                lo = lo.min(ov);
                hi = hi.max(ov);
            }

            t.row(vec![
                n.to_string(),
                format!("{:.1}", base.gflops()),
                format!("{:.1}", ft0.report.gflops()),
                pct(ov0),
                if lo.is_finite() { pct(lo) } else { "-".into() },
                if hi.is_finite() { pct(hi) } else { "-".into() },
            ]);
        }

        println!(
            "Figure 6 ({}) — one fault in {}\n{}",
            region.label(),
            region.label(),
            t.render()
        );
    }

    println!(
        "Paper's reference points: ≤2.1% (Area 1), ≤2.15% (Area 2) at N = 10112;\n\
         Area 3 follows the no-failure line; all overheads decrease with N."
    );
}
