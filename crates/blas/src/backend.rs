//! Execution backend for the level-2 and level-3 kernels.
//!
//! Two implementations sit behind one knob: [`Backend::Serial`] (the
//! historical single-threaded behavior) and [`Backend::Threaded`], which
//! fans kernel work out over the persistent worker pool in
//! [`crate::pool`]. Workers are spawned once, parked on a condvar between
//! kernels, and fed chunks through a queue — no OS thread is created per
//! kernel call (the PR 1 `std::thread::scope` design paid a spawn/join
//! cycle on every call).
//!
//! **Determinism contract:** every parallel path partitions *output*
//! elements (row blocks, column blocks, slice ranges) and leaves each
//! element's floating-point reduction order exactly as in the serial
//! kernel. The two backends therefore produce **bit-identical** results
//! for any thread count — checksum aggregates (`Sre`/`Sce` in
//! `ft-hessenberg`) drift by the same rounding error regardless of
//! parallelism, so detection thresholds need no re-tuning. The property
//! tests in `crates/blas/tests/backend_properties.rs` and
//! `crates/blas/tests/pool_properties.rs` pin this down.
//!
//! The backend is tracked per thread (a thread-local), initialized from
//! the `FT_BLAS_BACKEND` environment variable on first use:
//!
//! * `serial` — single-threaded (the default);
//! * `threaded` — threaded, worker count = available parallelism;
//! * `threaded:4` — threaded with exactly 4 workers;
//! * `threaded:auto` — threaded clamped to the detected core count, and
//!   plain `serial` when only one core is available (so a 1-core box
//!   never pays threaded dispatch overhead for zero parallelism).

use crate::pool::{self, AsyncHandle, ScopedTask};
use ft_matrix::MatViewMut;
use std::cell::Cell;
use std::sync::Arc;

/// **The** compute-bound parallel gate: minimum per-kernel work volume
/// (`m·n·k`-style element-operation count) before the threaded backend
/// actually forks a level-3 kernel; below it, dispatch overhead dominates
/// and the serial path runs instead. This is the single gate every
/// level-3 kernel consults (via [`fork_threads`]) — `gemm`'s former
/// private `PARALLEL_THRESHOLD` is unified here. Selection depends only
/// on the problem size — never on the thread count — so the chosen
/// algorithm (and hence the bit pattern of the result) is the same for
/// every backend.
///
/// **Calibration** (from the `dispatch_overhead` record in
/// `BENCH_gemm.json`): one pool dispatch costs ≈ 5.9 µs. At the packed
/// kernel's measured serial rate (tens of GFLOP/s) a chunk must carry a
/// few MFLOPs before that tax drops under a couple of percent; the old
/// `128³` gate admitted `n = 256` (16 M volume split across 4 workers →
/// ≈ 4 M each) yet the smoke bench showed threaded at 0.44× serial once
/// per-call pack duplication was added on top. `160³` keeps per-worker
/// chunks ≥ ~4 M volume (≥ ~8 MFLOPs) *before* splitting, pushing the
/// crossover to sizes where the pool measurably wins.
pub const PARALLEL_MIN_VOLUME: usize = 160 * 160 * 160;

/// The memory-bound parallel gate: minimum element count (`m·n` for
/// `gemv`/`ger`, output length² for checksum sweeps) before a level-2 or
/// vector kernel forks. Memory-bound kernels amortize dispatch much
/// faster than their flop count suggests — each element is touched once —
/// so this gate is far lower than [`PARALLEL_MIN_VOLUME`]. Consulted via
/// [`fork_threads_mem`]; same backend-independence rule as above.
/// Recalibrated alongside [`PARALLEL_MIN_VOLUME`]: at ≈ 5.9 µs per
/// dispatch a memory-bound sweep needs ≥ ~10⁵ touched elements before
/// forking amortizes.
pub const PARALLEL_MIN_ELEMS: usize = 128 * 1024;

/// Which execution backend the level-3 kernels use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded kernels (the historical behavior).
    Serial,
    /// Persistent-pool workers (see [`crate::pool`]); `Threaded(0)` means
    /// "use the machine's available parallelism", `Threaded(n)` pins `n`
    /// workers.
    Threaded(usize),
}

impl Backend {
    /// Parses the `FT_BLAS_BACKEND` environment variable (see the module
    /// docs for the accepted forms); unset or unrecognized values fall
    /// back to [`Backend::Serial`].
    pub fn from_env() -> Backend {
        ft_trace::env_knob::parse_with("FT_BLAS_BACKEND", Backend::parse).unwrap_or(Backend::Serial)
    }

    /// Parses `"serial"`, `"threaded"`, `"threaded:N"` or
    /// `"threaded:auto"`.
    pub fn parse(s: &str) -> Option<Backend> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("serial") {
            return Some(Backend::Serial);
        }
        if s.eq_ignore_ascii_case("threaded") {
            return Some(Backend::Threaded(0));
        }
        if let Some(rest) = s
            .strip_prefix("threaded:")
            .or_else(|| s.strip_prefix("THREADED:"))
        {
            if rest.trim().eq_ignore_ascii_case("auto") {
                return Some(Backend::auto());
            }
            return rest.parse::<usize>().ok().map(|n| {
                if n <= 1 {
                    Backend::Serial
                } else {
                    Backend::Threaded(n)
                }
            });
        }
        None
    }

    /// The `threaded:auto` resolution: threaded with worker count clamped
    /// to the machine's detected parallelism, degrading to
    /// [`Backend::Serial`] on a single-core box — there, threaded
    /// dispatch buys no parallelism but still pays queue/wake overhead
    /// (the `threaded:4 < serial` regression visible in
    /// `BENCH_gemm.json` at `cores: 1`).
    pub fn auto() -> Backend {
        let cores = available_parallelism();
        if cores <= 1 {
            Backend::Serial
        } else {
            Backend::Threaded(cores)
        }
    }

    /// The worker count this backend runs with (`Serial` → 1,
    /// `Threaded(0)` → available parallelism).
    pub fn threads(self) -> usize {
        match self {
            Backend::Serial => 1,
            Backend::Threaded(0) => available_parallelism(),
            Backend::Threaded(n) => n,
        }
    }

    /// `true` for the threaded backend.
    pub fn is_threaded(self) -> bool {
        matches!(self, Backend::Threaded(_))
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    static CURRENT: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The calling thread's active backend (initialized from `FT_BLAS_BACKEND`
/// on first use).
pub fn current_backend() -> Backend {
    CURRENT.with(|c| match c.get() {
        Some(b) => b,
        None => {
            let b = Backend::from_env();
            c.set(Some(b));
            b
        }
    })
}

/// Sets the calling thread's backend for all subsequent kernel calls.
pub fn set_backend(backend: Backend) {
    CURRENT.with(|c| c.set(Some(backend)));
}

/// Runs `f` with `backend` active, restoring the previous backend
/// afterwards (also on panic).
pub fn with_backend<R>(backend: Backend, f: impl FnOnce() -> R) -> R {
    struct Restore(Backend);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_backend(self.0);
        }
    }
    let _restore = Restore(current_backend());
    set_backend(backend);
    f()
}

/// Worker count the current backend grants a compute-bound kernel of the
/// given work volume: 1 (don't fork) unless the backend is threaded
/// **and** the volume clears [`PARALLEL_MIN_VOLUME`]. Always 1 on a pool
/// worker thread (no nested forking; see [`crate::pool`]).
pub(crate) fn fork_threads(volume: usize) -> usize {
    fork_gated(volume, PARALLEL_MIN_VOLUME)
}

/// [`fork_threads`] for memory-bound kernels: gates on
/// [`PARALLEL_MIN_ELEMS`] instead.
pub(crate) fn fork_threads_mem(elems: usize) -> usize {
    fork_gated(elems, PARALLEL_MIN_ELEMS)
}

fn fork_gated(work: usize, gate: usize) -> usize {
    if pool::in_worker() {
        return 1;
    }
    let b = current_backend();
    if b.is_threaded() && work >= gate {
        b.threads().max(1)
    } else {
        1
    }
}

/// Splits `b` into up to `workers` near-equal contiguous **column** blocks
/// and runs `f(first_global_col, block)` on each, the extra blocks on
/// pool workers. `f` must treat columns independently; determinism then
/// follows because each column is processed by exactly the serial code.
pub(crate) fn for_each_col_chunk<F>(b: MatViewMut<'_>, workers: usize, f: F)
where
    F: Fn(usize, MatViewMut<'_>) + Sync,
{
    let n = b.cols();
    let t = workers.min(n.max(1)).max(1);
    if t <= 1 {
        f(0, b);
        return;
    }
    let (base, extra) = (n / t, n % t);
    let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(t);
    let mut rest = b;
    let mut j0 = 0usize;
    let fr = &f;
    for w in 0..t {
        let width = base + usize::from(w < extra);
        let (chunk, tail) = rest.split_at_col(width);
        let c0 = j0;
        tasks.push(Box::new(move || fr(c0, chunk)));
        rest = tail;
        j0 += width;
    }
    pool::run_scoped(tasks);
}

/// Asynchronous analogue of [`for_each_col_chunk`]: splits `b` into up to
/// `workers` near-equal contiguous column blocks, dispatches **all** of
/// them onto pool workers (the caller runs none inline — it is expected
/// to keep working on the critical path), and returns the completion
/// token. The column partition is identical to [`for_each_col_chunk`]'s,
/// and `f` must treat columns independently, so the result is
/// bit-identical to the synchronous and serial schedules no matter when
/// the token is waited.
///
/// The borrow of `b` stays live until the returned [`AsyncHandle`] is
/// waited or dropped, which is exactly what makes the overlap safe: the
/// caller can mutate *other* regions of the parent matrix meanwhile, and
/// the borrow checker re-admits a full borrow only after the handle dies.
pub fn spawn_col_chunks<'scope, F>(
    b: MatViewMut<'scope>,
    workers: usize,
    f: F,
) -> AsyncHandle<'scope>
where
    F: Fn(usize, MatViewMut<'scope>) + Send + Sync + 'scope,
{
    let n = b.cols();
    if n == 0 {
        return pool::dispatch_async(Vec::new());
    }
    let t = workers.min(n).max(1);
    let (base, extra) = (n / t, n % t);
    let shared = Arc::new(f);
    let mut tasks: Vec<ScopedTask<'scope>> = Vec::with_capacity(t);
    let mut rest = b;
    let mut j0 = 0usize;
    for w in 0..t {
        let width = base + usize::from(w < extra);
        let (chunk, tail) = rest.split_at_col(width);
        let c0 = j0;
        let fr = Arc::clone(&shared);
        tasks.push(Box::new(move || fr(c0, chunk)));
        rest = tail;
        j0 += width;
    }
    pool::dispatch_async(tasks)
}

/// Row-block analogue of [`for_each_col_chunk`]: `f(first_global_row,
/// block)` over near-equal contiguous row blocks.
pub(crate) fn for_each_row_chunk<F>(b: MatViewMut<'_>, workers: usize, f: F)
where
    F: Fn(usize, MatViewMut<'_>) + Sync,
{
    let m = b.rows();
    let t = workers.min(m.max(1)).max(1);
    if t <= 1 {
        f(0, b);
        return;
    }
    let (base, extra) = (m / t, m % t);
    let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(t);
    let mut rest = b;
    let mut i0 = 0usize;
    let fr = &f;
    for w in 0..t {
        let height = base + usize::from(w < extra);
        let (chunk, tail) = rest.split_at_row(height);
        let r0 = i0;
        tasks.push(Box::new(move || fr(r0, chunk)));
        rest = tail;
        i0 += height;
    }
    pool::run_scoped(tasks);
}

/// 2-D analogue of [`for_each_col_chunk`]: splits `c` into a `tr × tc`
/// grid of near-equal contiguous tiles and runs `f(first_global_row,
/// first_global_col, tile)` on each, extra tiles on pool workers. The
/// gemm threaded path partitions its output this way (`jc`/`ic`
/// macro-tiles) so each worker runs the full packed serial kernel on a
/// private block of `C` — per-element results do not depend on the grid,
/// preserving the bit-identity contract.
pub(crate) fn for_each_tile<F>(c: MatViewMut<'_>, tr: usize, tc: usize, f: F)
where
    F: Fn(usize, usize, MatViewMut<'_>) + Sync,
{
    let (m, n) = (c.rows(), c.cols());
    let tr = tr.min(m.max(1)).max(1);
    let tc = tc.min(n.max(1)).max(1);
    if tr * tc <= 1 {
        f(0, 0, c);
        return;
    }
    let (rbase, rextra) = (m / tr, m % tr);
    let (cbase, cextra) = (n / tc, n % tc);
    let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(tr * tc);
    let fr = &f;
    let mut rest = c;
    let mut j0 = 0usize;
    for wc in 0..tc {
        let width = cbase + usize::from(wc < cextra);
        let (band, tail) = rest.split_at_col(width);
        rest = tail;
        let mut brest = band;
        let mut i0 = 0usize;
        for wr in 0..tr {
            let height = rbase + usize::from(wr < rextra);
            let (tile, btail) = brest.split_at_row(height);
            brest = btail;
            let (r0, c0) = (i0, j0);
            tasks.push(Box::new(move || fr(r0, c0, tile)));
            i0 += height;
        }
        j0 += width;
    }
    pool::run_scoped(tasks);
}

/// Slice analogue of [`for_each_col_chunk`]: splits `out` into up to
/// `workers` near-equal contiguous ranges and runs `f(first_global_index,
/// chunk)` on each. Used by the parallel level-2 path, where the output is
/// a vector rather than a matrix block.
pub(crate) fn for_each_slice_chunk<F>(out: &mut [f64], workers: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let len = out.len();
    let t = workers.min(len.max(1)).max(1);
    if t <= 1 {
        f(0, out);
        return;
    }
    let (base, extra) = (len / t, len % t);
    let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(t);
    let mut rest = out;
    let mut i0 = 0usize;
    let fr = &f;
    for w in 0..t {
        let width = base + usize::from(w < extra);
        let (chunk, tail) = rest.split_at_mut(width);
        let r0 = i0;
        tasks.push(Box::new(move || fr(r0, chunk)));
        rest = tail;
        i0 += width;
    }
    pool::run_scoped(tasks);
}

/// Fills `out[i] = f(i)` for every index, fanning contiguous index ranges
/// out over the current backend's workers (memory-bound gate: the work is
/// assumed to be ~`len` reads per element, as in the FT driver's fresh
/// row/column checksum sums). Each element is computed by the same pure
/// function regardless of the worker count, so the result is bit-identical
/// to the serial loop — this is what keeps the FT driver's error
/// localization deterministic under the threaded backend.
pub fn parallel_map_into<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = out.len();
    let t = fork_threads_mem(len.saturating_mul(len)).min(len.max(1));
    if t <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = len.div_ceil(t);
    let fr = &f;
    let tasks: Vec<ScopedTask<'_>> = out
        .chunks_mut(chunk)
        .enumerate()
        .map(|(ci, block)| {
            let base = ci * chunk;
            Box::new(move || {
                for (off, slot) in block.iter_mut().enumerate() {
                    *slot = fr(base + off);
                }
            }) as ScopedTask<'_>
        })
        .collect();
    pool::run_scoped(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::Matrix;

    #[test]
    fn parse_forms() {
        assert_eq!(Backend::parse("serial"), Some(Backend::Serial));
        assert_eq!(Backend::parse("threaded"), Some(Backend::Threaded(0)));
        assert_eq!(Backend::parse("threaded:4"), Some(Backend::Threaded(4)));
        assert_eq!(Backend::parse("threaded:1"), Some(Backend::Serial));
        assert_eq!(Backend::parse(" Threaded "), Some(Backend::Threaded(0)));
        assert_eq!(Backend::parse("gpu"), None);
    }

    #[test]
    fn parse_threaded_auto_clamps_to_cores() {
        let auto = Backend::parse("threaded:auto").expect("threaded:auto must parse");
        assert_eq!(auto, Backend::auto());
        assert_eq!(Backend::parse("THREADED:AUTO"), Some(auto));
        match auto {
            Backend::Serial => assert_eq!(available_parallelism(), 1),
            Backend::Threaded(n) => {
                assert!(n >= 2, "auto must pin a real worker count, got {n}");
                assert_eq!(n, available_parallelism());
            }
        }
    }

    #[test]
    fn spawn_col_chunks_covers_exactly_once_and_waits() {
        for workers in [1usize, 2, 3, 5, 16] {
            let mut a = Matrix::zeros(7, 11);
            let handle = spawn_col_chunks(a.as_view_mut(), workers, |j0, mut chunk| {
                for j in 0..chunk.cols() {
                    for i in 0..chunk.rows() {
                        let old = chunk.at(i, j);
                        chunk.set(i, j, old + (j0 + j + 1) as f64);
                    }
                }
            });
            handle.wait();
            for j in 0..11 {
                for i in 0..7 {
                    assert_eq!(a[(i, j)], (j + 1) as f64, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn spawn_col_chunks_empty_matrix_resolves_immediately() {
        let mut a = Matrix::zeros(4, 0);
        let handle = spawn_col_chunks(a.as_view_mut(), 3, |_, _| {
            panic!("no chunk should run on an empty matrix")
        });
        assert!(handle.is_resolved());
        handle.wait();
    }

    #[test]
    fn spawn_col_chunks_drop_without_wait_completes_tasks() {
        let mut a = Matrix::zeros(5, 9);
        {
            let _handle = spawn_col_chunks(a.as_view_mut(), 3, |_, mut chunk| {
                for j in 0..chunk.cols() {
                    for i in 0..chunk.rows() {
                        chunk.set(i, j, 1.0);
                    }
                }
            });
            // Dropped here: the drop must block until every chunk ran.
        }
        for j in 0..9 {
            for i in 0..5 {
                assert_eq!(a[(i, j)], 1.0);
            }
        }
    }

    #[test]
    fn with_backend_restores_on_exit_and_panic() {
        set_backend(Backend::Serial);
        with_backend(Backend::Threaded(2), || {
            assert_eq!(current_backend(), Backend::Threaded(2));
        });
        assert_eq!(current_backend(), Backend::Serial);
        let result = std::panic::catch_unwind(|| {
            with_backend(Backend::Threaded(3), || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(current_backend(), Backend::Serial);
    }

    #[test]
    fn threads_resolution() {
        assert_eq!(Backend::Serial.threads(), 1);
        assert_eq!(Backend::Threaded(4).threads(), 4);
        assert!(Backend::Threaded(0).threads() >= 1);
    }

    #[test]
    fn col_chunks_cover_exactly_once() {
        for workers in [1usize, 2, 3, 5, 16] {
            let mut a = Matrix::zeros(7, 11);
            for_each_col_chunk(a.as_view_mut(), workers, |j0, mut chunk| {
                for j in 0..chunk.cols() {
                    for i in 0..chunk.rows() {
                        let old = chunk.at(i, j);
                        chunk.set(i, j, old + (j0 + j + 1) as f64);
                    }
                }
            });
            for j in 0..11 {
                for i in 0..7 {
                    assert_eq!(a[(i, j)], (j + 1) as f64, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn row_chunks_cover_exactly_once() {
        for workers in [1usize, 2, 4, 9] {
            let mut a = Matrix::zeros(10, 3);
            for_each_row_chunk(a.as_view_mut(), workers, |i0, mut chunk| {
                for j in 0..chunk.cols() {
                    for i in 0..chunk.rows() {
                        let old = chunk.at(i, j);
                        chunk.set(i, j, old + (i0 + i) as f64);
                    }
                }
            });
            for j in 0..3 {
                for i in 0..10 {
                    assert_eq!(a[(i, j)], i as f64, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn tiles_cover_exactly_once() {
        for (tr, tc) in [(1usize, 1usize), (2, 2), (3, 1), (1, 4), (2, 3), (5, 5)] {
            let mut a = Matrix::zeros(11, 13);
            for_each_tile(a.as_view_mut(), tr, tc, |i0, j0, mut tile| {
                for j in 0..tile.cols() {
                    for i in 0..tile.rows() {
                        let old = tile.at(i, j);
                        tile.set(i, j, old + ((i0 + i) * 100 + j0 + j) as f64);
                    }
                }
            });
            for j in 0..13 {
                for i in 0..11 {
                    assert_eq!(a[(i, j)], (i * 100 + j) as f64, "grid {tr}x{tc}");
                }
            }
        }
    }

    #[test]
    fn parallel_map_matches_serial() {
        let mut serial = vec![0.0f64; 301];
        for (i, s) in serial.iter_mut().enumerate() {
            *s = (i as f64).sin();
        }
        let mut par = vec![0.0f64; 301];
        with_backend(Backend::Threaded(4), || {
            parallel_map_into(&mut par, |i| (i as f64).sin());
        });
        assert_eq!(serial, par);
    }
}
