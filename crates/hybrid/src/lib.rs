#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Simulated GPU+CPU hybrid platform.
//!
//! The paper runs on an Intel Xeon E5-2670 host driving an NVIDIA Tesla
//! K40c over PCIe (Table I), with MAGMA's hybrid execution style: the host
//! factorizes panels while the device updates the trailing matrix, and
//! asynchronous transfers overlap with device compute.
//!
//! This crate substitutes that testbed with a **discrete-event cost
//! simulator** wrapped around real CPU execution:
//!
//! * three resource timelines — **host**, **device streams**, and the
//!   **link** (PCIe) — each a monotone clock;
//! * every operation is issued like a CUDA call: host work blocks the host
//!   clock, device kernels and transfers are *asynchronous* (they advance
//!   their stream/link clocks but return to the host immediately), and
//!   explicit `sync` joins clocks;
//! * a [`CostModel`] converts operation descriptors (GEMM flops, GEMV
//!   bytes, transfer bytes) into simulated seconds, with a preset
//!   calibrated to Table I of the paper;
//! * in [`ExecMode::Full`] the supplied closure actually executes (real
//!   numerics, simulated time); in [`ExecMode::TimingOnly`] closures are
//!   skipped, which makes the paper's full `N = 1022 … 10110` sweeps
//!   tractable on one CPU core.
//!
//! The quantity the paper's Figure 6 plots — GFLOP/s of the factorization
//! and the *relative overhead* of the fault-tolerant extra work, including
//! how much of it hides under device compute — is exactly what the
//! timeline algebra here produces.

pub mod cost;
pub mod exec;
pub mod stats;

pub use cost::{CostModel, OpClass, Work};
pub use exec::{ExecMode, HybridCtx, StreamId};
pub use stats::ExecStats;
