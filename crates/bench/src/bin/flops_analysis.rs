//! §V verification — the formal overhead analysis.
//!
//! The paper derives closed forms for the fault-tolerant algorithm's extra
//! floating-point operations (FLOPinit, FLOPchkV, FLOPr_chk, FLOPc_chk,
//! FLOPcommon, FLOPD — all `O(N²)`) against the factorization's
//! `10/3·N³`, concluding the relative overhead decays as `O(1/N)`.
//!
//! This binary *measures* the FLOPs with the instrumented BLAS kernels
//! (both drivers run in full-arithmetic mode with the global counter on)
//! and compares them with the paper's closed forms and with the `O(1/N)`
//! decay prediction. It also reports the storage overhead formula
//! `S = nb·N + 4N`.

use ft_bench::{sci, Args, Table};
use ft_blas::FlopGuard;
use ft_fault::FaultPlan;
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};

/// The paper's closed forms, summed (§V).
fn model_extra_flops(n: usize, nb: usize) -> f64 {
    let nf = n as f64;
    let nbf = nb as f64;
    let iters = (n.saturating_sub(2)).div_ceil(nb);
    // FLOPinit: two GEMVs over the n×n input.
    let init = 2.0 * nf * (2.0 * nf - 1.0);
    let mut chkv = 0.0;
    let mut r_chk = 0.0;
    let mut c_chk = 0.0;
    let mut common = 0.0;
    let mut detect = 0.0;
    for i in 0..iters {
        let rem = nf - nbf * i as f64; // ~ trailing size
        chkv += nbf * (2.0 * rem - 1.0);
        r_chk += rem * (2.0 * nbf - 1.0) + nf * (2.0 * nbf - 1.0) + nbf * (2.0 * rem - 1.0);
        c_chk += 2.0 * rem * (2.0 * nbf - 1.0);
        common += nbf * (2.0 * nbf - 1.0);
        detect += 2.0 * (2.0 * nf - 1.0);
    }
    init + chkv + r_chk + c_chk + common + detect
}

fn main() {
    let args = Args::from_env();
    let nb = args.nb.unwrap_or(32);
    let sizes = args
        .sizes
        .clone()
        .unwrap_or_else(|| vec![126, 254, 510, 766]);

    println!("§V — FLOP overhead analysis (nb = {nb})\n");
    let mut t = Table::new(vec![
        "N",
        "FLOP base (measured)",
        "10/3 N^3 (model)",
        "FLOP extra (measured)",
        "FLOP extra (paper model)",
        "overhead measured",
        "storage S = nb*N + 4N (f64s)",
    ]);

    let mut overheads: Vec<(usize, f64)> = vec![];
    for &n in &sizes {
        let a = ft_matrix::random::uniform(n, n, args.seed + n as u64);

        let base_flops = {
            let g = FlopGuard::new();
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
            gehrd_hybrid(&a, &HybridConfig { nb }, &mut ctx, &mut FaultPlan::none());
            g.count()
        };
        let ft_flops = {
            let g = FlopGuard::new();
            let mut ctx = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2);
            ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, &mut FaultPlan::none());
            g.count()
        };
        let extra = ft_flops.saturating_sub(base_flops);
        let model = model_extra_flops(n, nb);
        let nominal = ft_blas::gehrd_nominal_flops(n);
        let overhead = extra as f64 / base_flops as f64;
        overheads.push((n, overhead));

        t.row(vec![
            n.to_string(),
            base_flops.to_string(),
            format!("{nominal:.3e}"),
            extra.to_string(),
            format!("{model:.3e}"),
            sci(overhead),
            ((nb + 4) * n).to_string(),
        ]);
    }
    println!("{}", t.render());

    // Verify the O(1/N) decay: overhead(N) * N should be roughly constant.
    println!("\nO(1/N) decay check (overhead × N ≈ const):");
    let mut d = Table::new(vec!["N", "overhead × N"]);
    for &(n, ov) in &overheads {
        d.row(vec![n.to_string(), format!("{:.2}", ov * n as f64)]);
    }
    println!("{}", d.render());
    let first = overheads.first().unwrap().1;
    let last = overheads.last().unwrap().1;
    println!(
        "overhead falls from {} at N={} to {} at N={} — {}",
        ft_bench::pct(first),
        overheads.first().unwrap().0,
        ft_bench::pct(last),
        overheads.last().unwrap().0,
        if last < first {
            "decaying as the paper predicts"
        } else {
            "NOT decaying (unexpected)"
        }
    );
}
