//! Algorithm 3 of the paper: the soft-error resilient hybrid Hessenberg
//! reduction (`FT_DGEHRD`).
//!
//! Per panel iteration, on top of the Algorithm 2 structure:
//!
//! * the working matrix is checksum-extended ([`crate::encode`]); the
//!   block updates run on the extended matrix with `V` extended by its
//!   column checksums (`Vce`) and `Y` by the checksum-row image (`Yce`,
//!   computed from the *pre-update* checksum row — the independent path
//!   that makes silent corruption observable);
//! * the panel about to be factorized is checkpointed in host memory
//!   (diskless checkpointing), and the update operands `V`, `T`, `Y`, `W`
//!   are retained until the iteration verifies;
//! * at the iteration's end the detector compares `Sre` (sum of the
//!   row-checksum column) against `Sce` (sum of the column-checksum row);
//!   two dot products (Algorithm 3 lines 12–13);
//! * on mismatch: the left and right block updates are reversed from the
//!   retained intermediates, the panel is restored from its checkpoint,
//!   fresh row/column sums locate the error(s), the checksum-subtraction
//!   formula corrects them, and the iteration re-executes (lines 14–16);
//! * the `Q` reflectors are protected by host-side checksums generated on
//!   the otherwise-idle CPU, overlapped with the device update (paper
//!   §IV-E), and verified once at the end (§IV-F), together with a final
//!   whole-matrix consistency pass that also covers finished `H` columns.

use crate::encode::{extend_v, extend_y, ExtMatrix};
use crate::hybrid_alg::panel_costs;
use crate::qprotect::QProtection;
use crate::recovery::{correct_errors, locate_errors};
use crate::report::{FailureReason, FtReport, PhaseBreakdown, RecoveryEvent};
use crate::reverse::{
    left_update_ext, left_update_ext_ft, reverse_left_update_ext, reverse_right_update_ext,
    right_update_panel_top, right_update_trailing, right_update_trailing_ft,
};
use crate::threshold::ThresholdPolicy;
use ft_fault::{classify, FaultPlan, Phase, Region};
use ft_hybrid::{HybridCtx, OpClass, StreamId, Work};
use ft_lapack::{lahr2_within, HessFactorization, Panel};
use ft_matrix::Matrix;

/// Configuration of the fault-tolerant driver.
#[derive(Clone, Copy, Debug)]
pub struct FtConfig {
    /// Panel width.
    pub nb: usize,
    /// Detection threshold policy.
    pub threshold: ThresholdPolicy,
    /// Maintain and verify the host-side `Q` checksums.
    pub protect_q: bool,
    /// Run the `Q`-checksum GEMVs on the (idle, overlapped) host — the
    /// paper's choice. `false` serializes them on the device stream
    /// (ablation: shows why the overlap matters).
    pub q_checksums_on_host: bool,
    /// Recovery attempts per iteration before falling back to a checksum
    /// re-encode.
    pub max_recovery_attempts: usize,
    /// Accumulation scheme for the checksum aggregates (paper
    /// reference 27): more accurate schemes reduce `Sre`/`Sce` drift and
    /// allow tighter detection thresholds.
    pub checksum_scheme: ft_blas::SumScheme,
    /// Execution backend for the level-3 host kernels the simulation
    /// actually runs (trailing updates, reversal, checksum sums). The
    /// default follows the `FT_BLAS_BACKEND` environment variable; the
    /// threaded backend is bit-identical to the serial one (see
    /// [`ft_blas::backend`]), so it changes wall-clock time only — never
    /// results, checksums or detection behavior.
    pub backend: ft_blas::Backend,
    /// Run the two trailing block updates through the fused online-ABFT
    /// kernel ([`ft_blas::gemm_ft`]): checksums are encoded during operand
    /// packing and verified in the kernel epilogue, catching a transient
    /// strike inside the gemm itself before the iteration-level
    /// `Sre`/`Sce` detector runs. Clean runs are bit-identical to the
    /// plain kernels, so this changes detection latency and
    /// [`FtReport::online_detections`] only — never results. Default
    /// `false` (the paper's iteration-granularity scheme).
    pub online_abft: bool,
    /// Overlap each iteration's far (trailing right) update — dispatched
    /// asynchronously onto pool workers — with the host-side `Q`-checksum
    /// generation and the finished-panel checksum-row refresh (the paper's
    /// §IV-E overlap, made real in wall-clock). The far token resolves
    /// before the left update consumes the trailing columns, so detection
    /// and recovery semantics are exactly the sequential ones and clean
    /// runs are bit-identical (see DESIGN.md §8.2). Defaults to the
    /// `FT_GEHRD_LOOKAHEAD` environment knob. Ignored (sequential
    /// schedule) when [`FtConfig::online_abft`] is on: the fused-checksum
    /// kernel verifies whole-update block checksums and is not split.
    pub lookahead: bool,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            nb: 32,
            threshold: ThresholdPolicy::default(),
            protect_q: true,
            q_checksums_on_host: true,
            max_recovery_attempts: 3,
            checksum_scheme: ft_blas::SumScheme::Naive,
            backend: ft_blas::Backend::from_env(),
            online_abft: false,
            lookahead: ft_lapack::lookahead_from_env(),
        }
    }
}

impl FtConfig {
    /// Default configuration with an explicit panel width.
    pub fn with_nb(nb: usize) -> Self {
        FtConfig {
            nb,
            ..Default::default()
        }
    }

    /// Short tag naming the active protection level, recorded with every
    /// fault-journal entry so post-mortems can correlate recovery
    /// behavior with the protection that was in force.
    pub fn protection_label(&self) -> &'static str {
        match (self.protect_q, self.online_abft) {
            (true, true) => "checksums+q+online",
            (true, false) => "checksums+q",
            (false, true) => "checksums+online",
            (false, false) => "checksums",
        }
    }
}

/// Result of a fault-tolerant factorization.
#[derive(Debug)]
pub struct FtOutcome {
    /// The factorization; `None` in [`ft_hybrid::ExecMode::TimingOnly`].
    pub result: Option<HessFactorization>,
    /// Detection/recovery/timing report.
    pub report: FtReport,
    /// `Some` when the run hit a terminal recovery failure (attempt
    /// exhaustion or an unresolvable final check) and the result cannot be
    /// trusted without independent verification. Retry-with-escalation
    /// layers key off this field.
    pub failure: Option<FailureReason>,
}

impl FtOutcome {
    /// `true` when the run reported unrecoverable corruption.
    pub fn is_unrecoverable(&self) -> bool {
        self.failure.is_some()
    }
}

/// Registry counter `ft.recoveries`: detection-and-recovery episodes
/// (one per [`RecoveryEvent`] pushed, including end-of-run repairs).
fn ft_recovery_counter() -> &'static ft_trace::Counter {
    static C: std::sync::OnceLock<&'static ft_trace::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| ft_trace::counter("ft.recoveries"))
}

/// Registry counter `ft.corrections`: individual element corrections
/// applied from checksum residues.
fn ft_correction_counter() -> &'static ft_trace::Counter {
    static C: std::sync::OnceLock<&'static ft_trace::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| ft_trace::counter("ft.corrections"))
}

/// Everything one iteration retains for possible reversal — the diskless
/// checkpoint of Algorithm 3.
struct IterArtifacts {
    panel: Option<Panel>,
    yx: Option<Matrix>,
    vx: Option<Matrix>,
    w_left: Option<Matrix>,
    /// Residual deficits flagged by the fused online-ABFT kernels (0 when
    /// `FtConfig::online_abft` is off or the iteration was clean).
    online_detected: usize,
    /// Elements corrected in place by the fused kernels.
    online_corrected: usize,
}

/// Runs Algorithm 3 on the simulated hybrid platform.
///
/// The level-3 kernels execute under [`FtConfig::backend`] for the whole
/// call (restored afterwards, also on panic).
pub fn ft_gehrd_hybrid(
    a: &Matrix,
    cfg: &FtConfig,
    ctx: &mut HybridCtx,
    plan: &mut FaultPlan,
) -> FtOutcome {
    ft_blas::with_backend(cfg.backend, || ft_gehrd_hybrid_inner(a, cfg, ctx, plan))
}

fn ft_gehrd_hybrid_inner(
    a: &Matrix,
    cfg: &FtConfig,
    ctx: &mut HybridCtx,
    plan: &mut FaultPlan,
) -> FtOutcome {
    assert!(a.is_square(), "ft_gehrd_hybrid: matrix must be square");
    let n = a.rows();
    let nb = cfg.nb.max(1);
    let s0 = StreamId(0);
    let s1 = StreamId(1);
    let threshold = cfg.threshold.resolve(a);
    let loc_tol = threshold / (n as f64).sqrt().max(1.0);

    let wall_start = ft_trace::clock::Stopwatch::start();
    let trace_mark = ft_trace::mark();

    let mut report = FtReport {
        n,
        nb,
        threshold,
        ..Default::default()
    };
    let mut failure: Option<FailureReason> = None;

    // Transfer the input and encode it on the device (lines 1–2).
    ctx.h2d(s0, n * n * 8, || ());
    let mut ax = {
        let _span = ft_trace::span!("ft.encode");
        ctx.device(
            s0,
            OpClass::DeviceGemv,
            Work::Flops(4.0 * (n * n) as f64),
            || ExtMatrix::encode_with(a, cfg.checksum_scheme),
        )
    };

    let mut qprot = QProtection::new(n);
    let mut tau = vec![0.0f64; n.saturating_sub(2)];

    let total = n.saturating_sub(2);
    let mut k = 0;
    let mut iter = 0usize;
    // Timing-only: faults that struck after an iteration's updates ran
    // (Phase::BeforeDetection) cannot perturb that iteration's aggregates;
    // they become visible — if at all — once the *next* iteration's
    // updates run over them, so they are carried forward one boundary.
    let mut carried_faults: Vec<ft_fault::ScheduledFault> = vec![];
    while k < total {
        let ib = nb.min(total - k);

        // ---- fault hook: iteration boundary ----------------------------
        let timing_faults = match &mut ax {
            Some(axm) => {
                let applied = plan.apply_due(iter, Phase::IterationStart, axm.raw_mut());
                report.injected.extend_from_slice(&applied);
                vec![]
            }
            None => {
                let mut due = std::mem::take(&mut carried_faults);
                due.extend(plan.peek_due(iter, Phase::IterationStart));
                due
            }
        };
        if ax.is_none() {
            plan.consume_due(iter, Phase::IterationStart);
        }

        // ---- diskless checkpoint of the panel --------------------------
        let checkpoint: Option<Matrix> =
            ax.as_ref().map(|axm| axm.raw().sub_matrix(0, k, n + 1, ib));

        // ---- run the iteration ------------------------------------------
        let mut artifacts = run_iteration(ctx, &mut ax, n, k, ib, cfg, s0, s1);
        report.online_detections += artifacts.online_detected;
        report.online_corrections += artifacts.online_corrected;

        // ---- fault hook: right before detection -------------------------
        if let Some(axm) = &mut ax {
            let applied = plan.apply_due(iter, Phase::BeforeDetection, axm.raw_mut());
            report.injected.extend_from_slice(&applied);
        } else {
            carried_faults.extend(plan.peek_due(iter, Phase::BeforeDetection));
            plan.consume_due(iter, Phase::BeforeDetection);
        }

        // ---- detection (lines 12–13): two device reductions -------------
        let mut detected = detect(ctx, &ax, n, threshold, s0, &timing_faults, k, ib);

        // ---- recovery loop (lines 14–16) ---------------------------------
        let mut attempts = 0;
        while detected && attempts < cfg.max_recovery_attempts {
            attempts += 1;
            report.redone_iterations += 1;

            let mismatch = ax
                .as_ref()
                .map(|x| (x.sre() - x.sce()).abs())
                .unwrap_or(f64::NAN);

            // Reverse the left then the right update from retained
            // intermediates (line 14).
            let m = n - k - 1;
            let ntrail1 = m - ib + 2;
            let left_flops = (4.0 * m as f64 + ib as f64) * ntrail1 as f64 * ib as f64;
            {
                let _span = ft_trace::span!("ft.reverse", iter);
                ctx.device(s0, OpClass::DeviceGemm, Work::Flops(left_flops), || {
                    let axm = ax.as_mut().unwrap();
                    reverse_left_update_ext(
                        axm,
                        k,
                        ib,
                        artifacts.vx.as_ref().unwrap(),
                        &artifacts.panel.as_ref().unwrap().t,
                        artifacts.w_left.as_ref().unwrap(),
                    );
                });
                ctx.device(
                    s0,
                    OpClass::DeviceGemm,
                    Work::gemm(n + 1, ntrail1, ib),
                    || {
                        let axm = ax.as_mut().unwrap();
                        reverse_right_update_ext(
                            axm,
                            k,
                            ib,
                            artifacts.yx.as_ref().unwrap(),
                            artifacts.vx.as_ref().unwrap(),
                        );
                    },
                );
                // Restore the panel from its checkpoint.
                ctx.h2d(s0, (n + 1) * ib * 8, || {
                    let axm = ax.as_mut().unwrap();
                    axm.raw_mut()
                        .set_sub_matrix(0, k, checkpoint.as_ref().unwrap());
                });
            }

            // Locate: fresh row/column sums vs the stored checksums.
            let corrected = ctx.device(
                s0,
                OpClass::DeviceVector,
                Work::Flops(4.0 * (n * n) as f64),
                || {
                    let axm = ax.as_mut().unwrap();
                    let out = {
                        let _span = ft_trace::span!("ft.locate", iter);
                        locate_errors(axm, k, loc_tol)
                    };
                    let fixes: Vec<(usize, usize, f64)> =
                        out.errors.iter().map(|e| (e.row, e.col, e.delta)).collect();
                    {
                        let _span = ft_trace::span!("ft.correct", iter);
                        correct_errors(axm, &out.errors);
                    }
                    if out.errors.is_empty() {
                        // Checksum-side corruption (or an undetectable
                        // pattern): re-encode the checksums from the data.
                        let _span = ft_trace::span!("ft.encode");
                        reencode_checksums(axm, k);
                    }
                    (fixes, out.resolved)
                },
            );
            ctx.d2h(s0, 2 * n * 8, || ());

            let (fixes, resolved) = corrected.unwrap_or((vec![], true));
            ft_recovery_counter().incr();
            ft_correction_counter().add(fixes.len() as u64);
            ft_trace::journal::record(
                iter,
                "recovery",
                cfg.protection_label(),
                fixes.len(),
                mismatch,
                resolved,
            );
            report.recoveries.push(RecoveryEvent {
                iteration: iter,
                mismatch,
                corrected: fixes,
                resolved,
            });

            // Re-execute the iteration (line: "the entire iteration is
            // repeated after the error correction").
            artifacts = run_iteration(ctx, &mut ax, n, k, ib, cfg, s0, s1);
            report.online_detections += artifacts.online_detected;
            report.online_corrections += artifacts.online_corrected;
            detected = detect(ctx, &ax, n, threshold, s0, &[], k, ib);
        }
        if detected {
            // Give up on surgical repair: refresh all checksums from the
            // current data so the factorization can continue; flag it.
            ctx.device(
                s0,
                OpClass::DeviceVector,
                Work::Flops(4.0 * (n * n) as f64),
                || {
                    let _span = ft_trace::span!("ft.encode");
                    reencode_checksums(ax.as_mut().unwrap(), k + ib);
                },
            );
            ft_recovery_counter().incr();
            ft_trace::journal::record(iter, "giveup", cfg.protection_label(), 0, f64::NAN, false);
            report.recoveries.push(RecoveryEvent {
                iteration: iter,
                mismatch: f64::NAN,
                corrected: vec![],
                resolved: false,
            });
            failure.get_or_insert(FailureReason::RecoveryExhausted { iteration: iter });
        }

        // ---- commit: absorb the verified panel into Q protection --------
        if let Some(p) = &artifacts.panel {
            tau[k..k + ib].copy_from_slice(&p.tau);
        }
        if cfg.protect_q {
            if let Some(axm) = &ax {
                let taus = &tau[k..k + ib];
                qprot.absorb_panel(axm.raw(), k, ib, taus);
            }
        }

        k += ib;
        iter += 1;
        report.iterations += 1;
    }

    // ---- final verification ---------------------------------------------
    // (a) whole-matrix consistency: covers finished-H corruption that the
    //     per-iteration aggregate test cannot see (never-touched columns).
    ctx.device(
        s0,
        OpClass::DeviceVector,
        Work::Flops(4.0 * (n * n) as f64),
        || (),
    );
    if let Some(axm) = &mut ax {
        let out = {
            let _span = ft_trace::span!("ft.locate");
            locate_errors(axm, total, loc_tol)
        };
        if !out.errors.is_empty() {
            let fixes: Vec<(usize, usize, f64)> =
                out.errors.iter().map(|e| (e.row, e.col, e.delta)).collect();
            {
                let _span = ft_trace::span!("ft.correct");
                correct_errors(axm, &out.errors);
            }
            ft_recovery_counter().incr();
            ft_correction_counter().add(fixes.len() as u64);
            ft_trace::journal::record(
                iter,
                "final",
                cfg.protection_label(),
                fixes.len(),
                f64::NAN,
                out.resolved,
            );
            report.recoveries.push(RecoveryEvent {
                iteration: iter,
                mismatch: f64::NAN,
                corrected: fixes,
                resolved: out.resolved,
            });
            if !out.resolved {
                failure.get_or_insert(FailureReason::UnresolvedFinalCheck { iteration: iter });
            }
        }
    }
    // (b) Q storage check (paper §IV-F, once at the end).
    if cfg.protect_q {
        let _span = ft_trace::span!("ft.qprotect");
        ctx.host(
            OpClass::HostVector,
            Work::Flops(2.0 * (n * n) as f64 / 2.0),
            || (),
        );
        if let Some(axm) = &mut ax {
            let fixes = qprot.verify_and_correct(axm.raw_mut(), loc_tol.max(1e-12));
            report.q_corrections = fixes.iter().map(|f| (f.row, f.col, f.delta)).collect();
            if let Some(idx) = qprot.verify_taus(&mut tau, 1e-10) {
                report.tau_corrections.push(idx);
            }
        }
    }

    // Result back to the host.
    ctx.d2h(s0, n * n * 8, || ());
    ctx.sync_all();

    report.sim_seconds = ctx.elapsed();
    report.stats = ctx.stats().clone();
    report.wall_seconds = wall_start.elapsed_seconds();
    if ft_trace::enabled() {
        // Attribute only this thread's events after our watermark: in a
        // shared process (parallel tests) the sink interleaves runs.
        report.phases = PhaseBreakdown::from_events(
            &ft_trace::events_since(trace_mark),
            ft_trace::current_tid(),
        );
    }

    let result = ax.map(|axm| HessFactorization {
        packed: axm.into_packed(),
        tau,
    });
    FtOutcome {
        result,
        report,
        failure,
    }
}

/// One full FT iteration body (also used verbatim for re-execution).
#[allow(clippy::too_many_arguments)]
fn run_iteration(
    ctx: &mut HybridCtx,
    ax: &mut Option<ExtMatrix>,
    n: usize,
    k: usize,
    ib: usize,
    cfg: &FtConfig,
    s0: StreamId,
    s1: StreamId,
) -> IterArtifacts {
    let m = n - k - 1;
    let ntrail = n - k - ib; // real trailing columns
    let ntrail1 = m - ib + 2; // + checksum column

    // Panel to host (line 4).
    ctx.d2h(s0, (n - k) * ib * 8, || ());
    ctx.sync_stream(s0);

    // Panel factorization (line 5): host + device-GEMV split as in MAGMA.
    let (host_flops, dev_gemv_flops) = panel_costs(n, k, ib);
    let panel = {
        let _span = ft_trace::span!("ft.panel", k);
        ctx.host(OpClass::HostPanel, Work::Flops(host_flops), || {
            lahr2_within(ax.as_mut().unwrap().raw_mut(), n, k, ib)
        })
    };
    ctx.device(s0, OpClass::DeviceGemv, Work::Flops(dev_gemv_flops), || ());
    ctx.h2d(s0, m * ib * 8, || ());
    ctx.d2h(s0, m * ib * 8, || ());

    // Checksum extensions (lines 6–7): Yce from the pre-update checksum
    // row, Vce as the column sums of V — two device GEMV-class kernels.
    let ext = {
        let _span = ft_trace::span!("ft.encode", k);
        ctx.device(
            s0,
            OpClass::DeviceGemv,
            Work::Flops((3 * m * ib) as f64),
            || {
                let axm = ax.as_ref().unwrap();
                let p = panel.as_ref().unwrap();
                // Arena scratch instead of a fresh Vec: this runs once per
                // panel iteration and reuses the same buffer after warm-up.
                let mut chk_seg = ft_blas::workspace::scratch(n - k - 1);
                for (dst, j) in chk_seg.iter_mut().zip(k + 1..n) {
                    *dst = axm.chk_row(j);
                }
                let yx = extend_y(&p.y, &chk_seg, &p.v, &p.t);
                let vx = extend_v(&p.v);
                (yx, vx)
            },
        )
    };
    let (yx, vx) = match ext {
        Some((y, v)) => (Some(y), Some(v)),
        None => (None, None),
    };

    // V, T (and extensions) to the device.
    ctx.h2d(s0, ((m + 1) * ib + ib * ib) * 8, || ());

    // Right update to M's panel columns (line 8).
    if ib > 1 {
        let _span = ft_trace::span!("ft.trailing", k);
        ctx.device(
            s0,
            OpClass::DeviceGemm,
            Work::gemm(k + 1, ib - 1, ib),
            || {
                right_update_panel_top(
                    ax.as_mut().unwrap(),
                    k,
                    ib,
                    yx.as_ref().unwrap(),
                    vx.as_ref().unwrap(),
                );
            },
        );
    }

    // Async copy-back of the finished block (line 9), overlapped.
    ctx.stream_wait_stream(s1, s0);
    ctx.d2h(s1, (k + 1 + ib) * ib * 8, || ());

    // Right update to G + checksum borders (line 10) and the left update
    // (line 11, retaining W for reversal): the trailing-matrix phase.
    // Under `online_abft` both run through the fused-checksum kernel; the
    // `blas.abft` spans it opens are subtracted from `ft.trailing` in the
    // phase breakdown so the rows stay disjoint.
    let mut online_detected = 0usize;
    let mut online_corrected = 0usize;
    let left_flops = (4.0 * m as f64 + ib as f64) * ntrail1 as f64 * ib as f64;
    // Q-checksum generation for the finished panel — two GEMVs, run on
    // the idle host overlapped with the device updates (paper §IV-E), or
    // on the device for the ablation.
    let q_flops = 4.0 * (m * ib) as f64;
    let _ = ntrail;

    let w_left = if cfg.lookahead && !cfg.online_abft && ax.is_some() {
        // Lookahead schedule: the far (trailing right) update is
        // dispatched asynchronously onto pool workers, and the host-side
        // FT bookkeeping — the Q-checksum GEMVs and the finished-panel
        // checksum-row refresh, both of which touch only columns left of
        // `k + ib` — runs behind it as genuine wall-clock overlap. The
        // token resolves before the left update reads the trailing
        // columns, so everything downstream (the BeforeDetection fault
        // hook, `detect`, recovery) sees exactly the sequential state;
        // the column-chunked GEMM itself is bit-identical to the unsplit
        // call (see [`crate::reverse::dispatch_right_update_trailing`]).
        ctx.device(
            s0,
            OpClass::DeviceGemm,
            Work::gemm(n + 1, ntrail1, ib),
            || (),
        );
        let axm = ax.as_mut().unwrap();
        let workers = ft_blas::current_backend().threads().max(1);
        {
            let (mut head, trail) = axm.raw_mut().as_view_mut().split_at_col(k + ib);
            let handle = {
                let _span = ft_trace::span!("ft.trailing", k);
                crate::reverse::dispatch_right_update_trailing(
                    trail,
                    ib,
                    yx.as_ref().unwrap(),
                    vx.as_ref().unwrap(),
                    workers,
                )
            };
            if cfg.q_checksums_on_host {
                ctx.host(OpClass::HostVector, Work::Flops(q_flops), || ());
            } else {
                ctx.device(s0, OpClass::DeviceGemv, Work::Flops(q_flops), || ());
            }
            {
                let _span = ft_trace::span!("ft.encode", k);
                ctx.device(
                    s0,
                    OpClass::DeviceVector,
                    Work::Flops((ib * (k + 2 + ib)) as f64),
                    || {
                        crate::encode::refresh_chk_row_view(&mut head, n, k, k + ib, k + ib);
                    },
                );
            }
            // First trailing-region read is the left update below —
            // resolve the far token here; the span duration is the
            // pipeline stall.
            let _span = ft_trace::span!("ft.trailing", k);
            handle.wait();
        }
        let _span = ft_trace::span!("ft.trailing", k);
        ctx.device(s0, OpClass::DeviceGemm, Work::Flops(left_flops), || {
            left_update_ext(
                ax.as_mut().unwrap(),
                k,
                ib,
                vx.as_ref().unwrap(),
                &panel.as_ref().unwrap().t,
            )
        })
    } else {
        let _trailing_span = ft_trace::span!("ft.trailing", k);
        ctx.device(
            s0,
            OpClass::DeviceGemm,
            Work::gemm(n + 1, ntrail1, ib),
            || {
                let axm = ax.as_mut().unwrap();
                if cfg.online_abft {
                    let r = right_update_trailing_ft(
                        axm,
                        k,
                        ib,
                        yx.as_ref().unwrap(),
                        vx.as_ref().unwrap(),
                        ft_blas::AbftOptions::default(),
                    );
                    online_detected += r.detected;
                    online_corrected += r.corrected;
                } else {
                    right_update_trailing(axm, k, ib, yx.as_ref().unwrap(), vx.as_ref().unwrap());
                }
            },
        );

        let w_left = ctx.device(s0, OpClass::DeviceGemm, Work::Flops(left_flops), || {
            let axm = ax.as_mut().unwrap();
            let t = &panel.as_ref().unwrap().t;
            if cfg.online_abft {
                let (w, r) = left_update_ext_ft(
                    axm,
                    k,
                    ib,
                    vx.as_ref().unwrap(),
                    t,
                    ft_blas::AbftOptions::default(),
                );
                online_detected += r.detected;
                online_corrected += r.corrected;
                w
            } else {
                left_update_ext(axm, k, ib, vx.as_ref().unwrap(), t)
            }
        });
        drop(_trailing_span);

        if cfg.q_checksums_on_host {
            ctx.host(OpClass::HostVector, Work::Flops(q_flops), || ());
        } else {
            ctx.device(s0, OpClass::DeviceGemv, Work::Flops(q_flops), || ());
        }

        // Refresh the column checksums of the just-finished panel columns
        // from their final H values (their storage switched
        // representation).
        {
            let _span = ft_trace::span!("ft.encode", k);
            ctx.device(
                s0,
                OpClass::DeviceVector,
                Work::Flops((ib * (k + 2 + ib)) as f64),
                || {
                    ax.as_mut().unwrap().refresh_chk_row(k, k + ib, k + ib);
                },
            );
        }
        w_left
    };

    IterArtifacts {
        panel,
        yx,
        vx,
        w_left,
        online_detected,
        online_corrected,
    }
}

/// The end-of-iteration detector: `|Sre − Sce| > threshold`, NaN-safe.
#[allow(clippy::too_many_arguments)]
fn detect(
    ctx: &mut HybridCtx,
    ax: &Option<ExtMatrix>,
    n: usize,
    threshold: f64,
    s0: StreamId,
    timing_faults: &[ft_fault::ScheduledFault],
    k: usize,
    ib: usize,
) -> bool {
    let _span = ft_trace::span!("ft.detect", k);
    // Two device reductions + a tiny transfer + host compare.
    ctx.device(
        s0,
        OpClass::DeviceVector,
        Work::Flops(2.0 * n as f64),
        || (),
    );
    ctx.d2h(s0, 16, || ());
    ctx.sync_stream(s0);
    match ax {
        Some(axm) => {
            let diff = axm.sre() - axm.sce();
            ThresholdPolicy::exceeded(diff, threshold)
        }
        None => {
            // Timing-only mirror of the aggregate test above.
            timing_faults.iter().any(|f| {
                let row = f.fault.row.min(n - 1);
                let col = f.fault.col.min(n - 1);
                aggregate_visible(n, k, ib, row, col)
            })
        }
    }
}

/// Whether a strike at `(row, col)`, present when the iteration reducing
/// columns `k..k + ib` started, perturbs the `Sre − Sce` aggregate test
/// run at that iteration's end.
///
/// Detection runs after the iteration completes, so in the
/// [`classify`] frontier convention (`k` = columns already reduced) the
/// frontier is `k + ib`. The in-flight panel needs its own carve-out,
/// though: a strike inside columns `k..k + ib` happened *before* they
/// were reduced, fed `lahr2` and both extended block updates, and thus
/// drives `Sre` and `Sce` apart — even where `classify` at the advanced
/// frontier would already call the location `Q` storage (Area 3) or
/// finished `H`. Strikes left of the panel touch data this iteration
/// never reads: the aggregates cannot see them, and they are repaired by
/// the end-of-run whole-matrix and `Q`/`tau` checks without any rollback.
fn aggregate_visible(n: usize, k: usize, ib: usize, row: usize, col: usize) -> bool {
    let in_flight_panel = (k..k + ib).contains(&col);
    in_flight_panel
        || matches!(
            classify(n, (k + ib).min(n), row, col),
            Region::Area1 | Region::Area2
        )
}

/// Rebuilds both checksum borders from the stored data under the frontier
/// mask (last-resort recovery and checksum-corruption repair).
fn reencode_checksums(ax: &mut ExtMatrix, frontier: usize) {
    let n = ax.n();
    let rs = ax.math_row_sums(frontier);
    let cs = ax.math_col_sums(frontier);
    let mut grand = 0.0;
    for i in 0..n {
        ax.raw_mut()[(i, n)] = rs[i];
        grand += rs[i];
    }
    for j in 0..n {
        ax.raw_mut()[(n, j)] = cs[j];
    }
    ax.raw_mut()[(n, n)] = grand;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::ResidualReport;
    use ft_fault::Fault;
    use ft_hybrid::{CostModel, ExecMode};

    fn full_ctx() -> HybridCtx {
        HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2)
    }

    fn run(n: usize, nb: usize, seed: u64, plan: &mut FaultPlan) -> (Matrix, FtOutcome) {
        let a = ft_matrix::random::uniform(n, n, seed);
        let mut ctx = full_ctx();
        let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut ctx, plan);
        (a, out)
    }

    #[test]
    fn clean_run_no_false_positives() {
        for &(n, nb) in &[(32usize, 8usize), (64, 16), (96, 32), (50, 7)] {
            let (a, out) = run(n, nb, n as u64, &mut FaultPlan::none());
            assert!(
                out.report.recoveries.is_empty(),
                "false positive at n={n}, nb={nb}: {:?}",
                out.report.recoveries
            );
            let f = out.result.unwrap();
            let r = ResidualReport::compute(&a, &f.q(), &f.h());
            assert!(r.acceptable(1e-13), "n={n}: {r:?}");
        }
    }

    #[test]
    fn clean_run_no_false_positives_threaded_backend() {
        // The threaded backend must not perturb the checksum aggregates:
        // zero detections on clean runs, and the factorization must be
        // *bitwise* the run produced by the serial backend.
        for &(n, nb) in &[(64usize, 16usize), (50, 7)] {
            let a = ft_matrix::random::uniform(n, n, n as u64);
            let serial_cfg = FtConfig {
                backend: ft_blas::Backend::Serial,
                ..FtConfig::with_nb(nb)
            };
            let threaded_cfg = FtConfig {
                backend: ft_blas::Backend::Threaded(4),
                ..FtConfig::with_nb(nb)
            };
            let s = ft_gehrd_hybrid(&a, &serial_cfg, &mut full_ctx(), &mut FaultPlan::none());
            let t = ft_gehrd_hybrid(&a, &threaded_cfg, &mut full_ctx(), &mut FaultPlan::none());
            assert!(
                t.report.recoveries.is_empty(),
                "false positive under threaded backend at n={n}: {:?}",
                t.report.recoveries
            );
            let fs = s.result.unwrap();
            let ft = t.result.unwrap();
            assert_eq!(fs.tau, ft.tau, "taus must be bit-identical");
            for j in 0..n {
                for i in 0..n {
                    assert_eq!(
                        fs.packed[(i, j)].to_bits(),
                        ft.packed[(i, j)].to_bits(),
                        "packed output differs at ({i},{j}) for n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn gehrd_output_bit_identical_above_fork_gate() {
        // n = 320, nb = 64: the first trailing updates exceed
        // ft_blas::backend::PARALLEL_MIN_VOLUME, so the threaded backend
        // genuinely forks — the output must still match serial bitwise.
        let n = 320;
        let a = ft_matrix::random::uniform(n, n, 17);
        let mk = |backend| FtConfig {
            backend,
            ..FtConfig::with_nb(64)
        };
        let s = ft_gehrd_hybrid(
            &a,
            &mk(ft_blas::Backend::Serial),
            &mut full_ctx(),
            &mut FaultPlan::none(),
        );
        let t = ft_gehrd_hybrid(
            &a,
            &mk(ft_blas::Backend::Threaded(4)),
            &mut full_ctx(),
            &mut FaultPlan::none(),
        );
        assert!(t.report.recoveries.is_empty(), "{:?}", t.report.recoveries);
        let fs = s.result.unwrap();
        let ft = t.result.unwrap();
        assert_eq!(fs.tau, ft.tau);
        for j in 0..n {
            for i in 0..n {
                assert_eq!(
                    fs.packed[(i, j)].to_bits(),
                    ft.packed[(i, j)].to_bits(),
                    "packed output differs at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn online_abft_clean_run_bit_identical() {
        // Enabling the fused online-ABFT kernels must not change the
        // factorization by a single bit, flag nothing on clean runs, and
        // never trip the iteration-level detector.
        for &(n, nb) in &[(64usize, 16usize), (50, 7)] {
            let a = ft_matrix::random::uniform(n, n, n as u64 + 1);
            let base = ft_gehrd_hybrid(
                &a,
                &FtConfig::with_nb(nb),
                &mut full_ctx(),
                &mut FaultPlan::none(),
            );
            let cfg = FtConfig {
                online_abft: true,
                ..FtConfig::with_nb(nb)
            };
            let on = ft_gehrd_hybrid(&a, &cfg, &mut full_ctx(), &mut FaultPlan::none());
            assert_eq!(on.report.online_detections, 0, "n={n}");
            assert_eq!(on.report.online_corrections, 0, "n={n}");
            assert!(
                on.report.recoveries.is_empty(),
                "{:?}",
                on.report.recoveries
            );
            let fb = base.result.unwrap();
            let fo = on.result.unwrap();
            assert_eq!(fb.tau, fo.tau, "taus must be bit-identical at n={n}");
            for j in 0..n {
                for i in 0..n {
                    assert_eq!(
                        fb.packed[(i, j)].to_bits(),
                        fo.packed[(i, j)].to_bits(),
                        "packed output differs at ({i},{j}) for n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn online_abft_memory_fault_still_recovered_at_iteration_level() {
        // A strike landing in memory *between* kernels is input-consistent
        // for the fused gemms (their base sums absorb it), so it must not
        // fire the online detector spuriously — it flows through to the
        // iteration-level Sre/Sce detector and is corrected there.
        let n = 64;
        let cfg = FtConfig {
            online_abft: true,
            ..FtConfig::with_nb(16)
        };
        let a = ft_matrix::random::uniform(n, n, 7);
        let mut plan = FaultPlan::one(1, Fault::add(40, 50, 0.37));
        let out = ft_gehrd_hybrid(&a, &cfg, &mut full_ctx(), &mut plan);
        assert!(
            !out.report.recoveries.is_empty(),
            "iteration-level detector must still fire: {:?}",
            out.report
        );
        let rec = &out.report.recoveries[0];
        assert!(
            rec.corrected.iter().any(|&(r, c, _)| r == 40 && c == 50),
            "{rec:?}"
        );
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        assert!(r.acceptable(1e-12), "{r:?}");
    }

    #[test]
    fn area2_fault_detected_and_corrected() {
        let n = 64;
        // Fault in the trailing matrix at the start of iteration 1.
        let mut plan = FaultPlan::one(1, Fault::add(40, 50, 0.37));
        let (a, out) = run(n, 16, 7, &mut plan);
        assert_eq!(plan.applied().len(), 1);
        assert!(
            !out.report.recoveries.is_empty(),
            "fault must be detected: {:?}",
            out.report
        );
        let rec = &out.report.recoveries[0];
        assert!(
            rec.corrected.iter().any(|&(r, c, _)| r == 40 && c == 50),
            "{rec:?}"
        );
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        assert!(r.acceptable(1e-12), "{r:?}");
    }

    #[test]
    fn area1_fault_detected_and_corrected() {
        let n = 64;
        let nb = 16;
        // Row above the frontier at iteration 2 (k = 32): row < 32.
        let mut plan = FaultPlan::one(2, Fault::add(10, 55, 0.21));
        let (a, out) = run(n, nb, 8, &mut plan);
        assert!(!out.report.recoveries.is_empty(), "{:?}", out.report);
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        assert!(r.acceptable(1e-12), "{r:?}");
    }

    #[test]
    fn area3_fault_corrected_at_end() {
        let n = 64;
        let nb = 16;
        // Q storage: a reduced column's sub-sub-diagonal at iteration 2
        // (columns 0..32 reduced; pick col 5, row 30).
        let mut plan = FaultPlan::one(2, Fault::add(30, 5, 0.11));
        let (a, out) = run(n, nb, 9, &mut plan);
        assert!(
            !out.report.q_corrections.is_empty(),
            "Q check must fire: {:?}",
            out.report
        );
        // The strike hit Q *storage*, not a reflector scale: the tau
        // scalar checksum must verify clean (and its outcome is recorded,
        // not discarded).
        assert!(
            out.report.tau_corrections.is_empty(),
            "no tau should need repair: {:?}",
            out.report.tau_corrections
        );
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        // Area 3 recovery goes through encode/decode dot products: the
        // paper's Tables II/III show residuals ~100× larger here.
        assert!(r.factorization < 1e-11 && r.orthogonality < 1e-11, "{r:?}");
    }

    #[test]
    fn two_simultaneous_errors_non_rectangle() {
        let n = 64;
        let mut plan = FaultPlan::new(vec![
            ft_fault::ScheduledFault {
                iteration: 1,
                phase: Phase::IterationStart,
                fault: Fault::add(30, 40, 0.5),
            },
            ft_fault::ScheduledFault {
                iteration: 1,
                phase: Phase::IterationStart,
                fault: Fault::add(45, 22, 0.8),
            },
        ]);
        let (a, out) = run(n, 16, 10, &mut plan);
        assert!(!out.report.recoveries.is_empty());
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        assert!(r.acceptable(1e-12), "{r:?}");
    }

    #[test]
    fn finished_h_fault_fixed_by_final_check() {
        let n = 64;
        let nb = 16;
        // Finished H region at iteration 2: column 3 (reduced), row 2.
        let mut plan = FaultPlan::one(2, Fault::add(2, 3, 0.42));
        let (a, out) = run(n, nb, 11, &mut plan);
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        assert!(r.acceptable(1e-12), "{r:?} report={:?}", out.report);
    }

    #[test]
    fn recovery_exhaustion_sets_structured_failure() {
        // Zero recovery attempts: the first detection goes straight to the
        // give-up re-encode, which must surface as a structured failure.
        let n = 64;
        let a = ft_matrix::random::uniform(n, n, 21);
        let cfg = FtConfig {
            max_recovery_attempts: 0,
            ..FtConfig::with_nb(16)
        };
        let mut plan = FaultPlan::one(1, Fault::add(40, 50, 0.37));
        let out = ft_gehrd_hybrid(&a, &cfg, &mut full_ctx(), &mut plan);
        assert!(out.is_unrecoverable());
        assert_eq!(
            out.failure,
            Some(crate::report::FailureReason::RecoveryExhausted { iteration: 1 })
        );
        // The clean counterpart (default attempts) recovers and reports no
        // failure.
        let mut plan = FaultPlan::one(1, Fault::add(40, 50, 0.37));
        let ok = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut full_ctx(), &mut plan);
        assert!(!ok.is_unrecoverable(), "{:?}", ok.failure);
    }

    #[test]
    fn timing_only_exhaustion_matches_full() {
        // The timing-only simulation must charge (and report) the same
        // give-up path as the full run.
        let n = 96;
        let a = ft_matrix::random::uniform(n, n, 22);
        let cfg = FtConfig {
            max_recovery_attempts: 0,
            ..FtConfig::with_nb(16)
        };
        let mk_plan = || FaultPlan::one(1, Fault::add(40, 50, 0.29));
        let full = ft_gehrd_hybrid(&a, &cfg, &mut full_ctx(), &mut mk_plan());
        let mut ct = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
        let timing = ft_gehrd_hybrid(&a, &cfg, &mut ct, &mut mk_plan());
        assert!(full.is_unrecoverable());
        assert!(timing.is_unrecoverable());
        assert!(
            (full.report.sim_seconds - timing.report.sim_seconds).abs() < 1e-9,
            "{} vs {}",
            full.report.sim_seconds,
            timing.report.sim_seconds
        );
    }

    #[test]
    fn timing_only_matches_full_clean_time() {
        let n = 96;
        let a = ft_matrix::random::uniform(n, n, 12);
        let cfg = FtConfig::with_nb(16);
        let mut cf = full_ctx();
        let full = ft_gehrd_hybrid(&a, &cfg, &mut cf, &mut FaultPlan::none());
        let mut ct = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
        let timing = ft_gehrd_hybrid(&a, &cfg, &mut ct, &mut FaultPlan::none());
        assert!(timing.result.is_none());
        assert!(
            (full.report.sim_seconds - timing.report.sim_seconds).abs() < 1e-9,
            "{} vs {}",
            full.report.sim_seconds,
            timing.report.sim_seconds
        );
    }

    #[test]
    fn timing_only_matches_full_under_faults() {
        // The timing-only detector must charge a rollback exactly when the
        // real Sre/Sce aggregate test would. Scenarios, at nb = 16:
        //  * a strike inside the *active* panel (iteration 1 reduces
        //    columns 16..32; (40, 20) is below that panel's sub-diagonal)
        //    feeds the factorization and is detected that iteration;
        //  * a finished-H strike ((2, 3) at iteration 2) touches data no
        //    later iteration reads: no rollback, fixed by the final check;
        //  * a Q-storage strike ((30, 5) at iteration 2) likewise costs
        //    nothing per-iteration;
        //  * a BeforeDetection strike in the trailing matrix lands after
        //    the updates ran and is only detected one iteration later.
        let n = 96;
        let nb = 16;
        let cfg = FtConfig::with_nb(nb);
        let a = ft_matrix::random::uniform(n, n, 13);
        let scenarios: [(usize, Phase, usize, usize); 4] = [
            (1, Phase::IterationStart, 40, 20),
            (2, Phase::IterationStart, 2, 3),
            (2, Phase::IterationStart, 30, 5),
            (1, Phase::BeforeDetection, 40, 50),
        ];
        for &(iteration, phase, row, col) in &scenarios {
            let make_plan = || {
                FaultPlan::new(vec![ft_fault::ScheduledFault {
                    iteration,
                    phase,
                    fault: Fault::add(row, col, 0.29),
                }])
            };
            let mut cf = full_ctx();
            let full = ft_gehrd_hybrid(&a, &cfg, &mut cf, &mut make_plan());
            let mut ct = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
            let timing = ft_gehrd_hybrid(&a, &cfg, &mut ct, &mut make_plan());
            assert!(timing.result.is_none());
            assert!(
                (full.report.sim_seconds - timing.report.sim_seconds).abs() < 1e-9,
                "({iteration}, {phase:?}, {row}, {col}): full {} vs timing {} \
                 (full redone={}, timing redone={})",
                full.report.sim_seconds,
                timing.report.sim_seconds,
                full.report.redone_iterations,
                timing.report.redone_iterations,
            );
        }
    }

    #[test]
    fn ft_overhead_is_small_and_shrinks() {
        // The headline claim: < 2% overhead vs the fault-prone hybrid,
        // decreasing with N.
        let mut overheads = vec![];
        for &n in &[512usize, 1024, 2048] {
            let a = Matrix::zeros(n, n);
            let mut c1 = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
            let base = crate::hybrid_alg::gehrd_hybrid(
                &a,
                &crate::hybrid_alg::HybridConfig { nb: 32 },
                &mut c1,
                &mut FaultPlan::none(),
            );
            let mut c2 = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
            let ft = ft_gehrd_hybrid(&a, &FtConfig::with_nb(32), &mut c2, &mut FaultPlan::none());
            let overhead = (ft.report.sim_seconds - base.sim_seconds) / base.sim_seconds;
            overheads.push(overhead);
        }
        assert!(
            overheads[2] < overheads[0],
            "overhead should shrink: {overheads:?}"
        );
        assert!(
            overheads[2] < 0.10,
            "overhead at n=2048 too large: {overheads:?}"
        );
    }
}
