//! Panel-width design space: the paper fixes `nb = 32` (MAGMA's default
//! for the K40 generation); this sweep shows where that sits — baseline
//! GFLOP/s and FT overhead as functions of `nb`, on the simulated
//! platform.
//!
//! Two forces trade off: small `nb` keeps the O(N²·nb) FT extras small
//! but pays panel/kernel-launch latency more often and makes the
//! level-3 updates skinnier; large `nb` amortizes latency but grows the
//! serial host panel on the critical path.

use ft_bench::{pct, Args, Table};
use ft_fault::FaultPlan;
use ft_hessenberg::{ft_gehrd_hybrid, gehrd_hybrid, FtConfig, HybridConfig};
use ft_hybrid::{CostModel, ExecMode, HybridCtx};
use ft_matrix::Matrix;

fn main() {
    let args = Args::from_env();
    let sizes = args
        .sizes
        .clone()
        .unwrap_or_else(|| vec![2046, 6014, 10110]);
    let nbs = [8usize, 16, 32, 64, 128, 256];

    println!("Panel-width sweep (timing simulator)\n");
    for &n in &sizes {
        let a = Matrix::zeros(n, n);
        let mut t = Table::new(vec!["nb", "MAGMA Hess GF/s", "FT-Hess GF/s", "FT overhead"]);
        let mut best = (0usize, 0.0f64);
        for &nb in &nbs {
            let mut c = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
            let base = gehrd_hybrid(&a, &HybridConfig { nb }, &mut c, &mut FaultPlan::none());
            let mut c = HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::TimingOnly, 2);
            let ft = ft_gehrd_hybrid(&a, &FtConfig::with_nb(nb), &mut c, &mut FaultPlan::none());
            let overhead = (ft.report.sim_seconds - base.sim_seconds) / base.sim_seconds;
            if base.gflops() > best.1 {
                best = (nb, base.gflops());
            }
            t.row(vec![
                nb.to_string(),
                format!("{:.1}", base.gflops()),
                format!("{:.1}", ft.report.gflops()),
                pct(overhead),
            ]);
        }
        println!("== N = {n} ==   (best baseline nb = {})", best.0);
        println!("{}", t.render());
    }
    println!(
        "reading: GFLOP/s is fairly flat across 16–128 because the per-column\n\
         trailing-matrix GEMV inside the panel — not the panel width — dominates\n\
         the Hessenberg critical path; FT overhead decreases mildly with nb\n\
         (fewer detection points and checksum kernels per run)."
    );
}
