#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-based loops mirror the LAPACK reference codes
//! Soft-error resilient hybrid Hessenberg reduction — the paper's
//! contribution (Jia, Luszczek, Dongarra, IPDPSW 2016).
//!
//! The algorithm combines three fault-tolerance techniques:
//!
//! * **ABFT checksums** ([`encode`]) — the input matrix is extended with a
//!   row-checksum column and a column-checksum row; Theorem 1 of the paper
//!   (re-proved as property tests here) shows both stay valid under the
//!   blocked two-sided updates when the reflector block `V` is extended
//!   with its column checksums;
//! * **diskless checkpointing** — the pre-factorized panel and the
//!   intermediate update operands (`V`, `T`, `Y`, `W`) are kept in memory
//!   until the iteration has been verified;
//! * **reverse computation** ([`reverse`]) — on detection, the last left
//!   and right block updates are un-applied from the retained
//!   intermediates, restoring matrix *and* checksums to the previous
//!   iteration's consistent state, after which the error is located and
//!   corrected ([`recovery`]) and the iteration re-executed.
//!
//! Drivers:
//!
//! * [`hybrid_alg::gehrd_hybrid`] — Algorithm 2 (the fault-*prone* MAGMA
//!   hybrid baseline) on the simulated platform;
//! * [`ft_alg::ft_gehrd_hybrid`] — Algorithm 3, the fault-tolerant
//!   version, with on-line detection at the end of every panel iteration
//!   and host-side protection of the `Q` reflectors ([`qprotect`]).

pub mod encode;
pub mod ft_alg;
pub mod ftqr;
pub mod hybrid_alg;
pub mod qprotect;
pub mod recovery;
pub mod report;
pub mod reverse;
pub mod threshold;
pub mod tridiag;
pub mod verify;

pub use encode::ExtMatrix;
pub use ft_alg::{ft_gehrd_hybrid, FtConfig, FtOutcome};
pub use ft_lapack::HessFactorization;
pub use ftqr::{ftqr_factorize, FtQr, QrPostProcessReport};
pub use hybrid_alg::{gehrd_hybrid, HybridConfig, HybridOutcome};
pub use qprotect::QProtection;
pub use recovery::{correct_errors, locate_errors, LocatedError};
pub use report::{FailureReason, FtReport, PhaseBreakdown, RecoveryEvent};
pub use threshold::ThresholdPolicy;
pub use tridiag::{ft_sytd2, FtTridiagConfig, FtTridiagOutcome};
pub use verify::{factorization_residual, orthogonality_residual};
