//! Triangular matrix–matrix multiply:
//! `B ← α·op(T)·B` (left) or `B ← α·B·op(T)` (right).

use crate::backend;
use crate::flops::{model, record};
use crate::level1::axpy;
use crate::level2::trmv;
use crate::types::{Diag, Side, Trans, Uplo};
use ft_matrix::{MatView, MatViewMut};

/// Triangular matrix–matrix multiply in place.
///
/// `T` is the `uplo` triangle of the leading square part of `a` (order =
/// `B.rows()` for `Side::Left`, `B.cols()` for `Side::Right`).
pub fn trmm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    a: &MatView<'_>,
    b: &mut MatViewMut<'_>,
) {
    let (m, n) = (b.rows(), b.cols());
    let order = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert!(
        a.rows() >= order && a.cols() >= order,
        "trmm: triangle {}x{} smaller than order {order}",
        a.rows(),
        a.cols()
    );
    record(model::trmm(
        order,
        if matches!(side, Side::Left) { n } else { m },
    ));
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 {
        b.fill(0.0);
        return;
    }
    let unit = matches!(diag, Diag::Unit);
    // Both backends run the same per-element code (`trmm_left` /
    // `trmm_right`); the threaded path only partitions independent
    // columns (left) or rows (right), so results are bit-identical.
    let workers = backend::fork_threads(order * order * order.max(m.max(n)));

    match side {
        // Each column of B is an independent trmv: partition columns.
        Side::Left => {
            backend::for_each_col_chunk(b.rb_mut(), workers, |_, mut chunk| {
                trmm_left(uplo, trans, diag, alpha, a, &mut chunk);
            });
        }
        // The right-side column sweeps update every column at each step,
        // but each update is elementwise per row: partition rows and run
        // the identical sweep on each row slice.
        Side::Right => {
            backend::for_each_row_chunk(b.rb_mut(), workers, |_, mut chunk| {
                trmm_right(uplo, trans, unit, alpha, a, &mut chunk);
            });
        }
    }
}

/// Serial `B ← α·op(T)·B` on (a column slice of) `B`.
fn trmm_left(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    a: &MatView<'_>,
    b: &mut MatViewMut<'_>,
) {
    for j in 0..b.cols() {
        let col = b.col_mut(j);
        if alpha != 1.0 {
            for v in col.iter_mut() {
                *v *= alpha;
            }
        }
        trmv(uplo, trans, diag, a, col);
    }
}

/// Serial `B ← α·B·op(T)` on (a row slice of) `B`; the sweep structure
/// only depends on the column count, which row slicing preserves.
fn trmm_right(
    uplo: Uplo,
    trans: Trans,
    unit: bool,
    alpha: f64,
    a: &MatView<'_>,
    b: &mut MatViewMut<'_>,
) {
    let n = b.cols();
    match (uplo, trans) {
        // B·U: result col j = Σ_{k≤j} B(:,k)·U(k,j); descending j keeps
        // the needed source columns unmodified.
        (Uplo::Upper, Trans::No) => {
            for j in (0..n).rev() {
                scale_col(b, j, alpha * diag_val(a, j, unit));
                for k in 0..j {
                    let akj = a.at(k, j);
                    if akj != 0.0 {
                        add_col(b, k, j, alpha * akj);
                    }
                }
            }
        }
        // B·L: result col j = Σ_{k≥j} B(:,k)·L(k,j); ascending j.
        (Uplo::Lower, Trans::No) => {
            for j in 0..n {
                scale_col(b, j, alpha * diag_val(a, j, unit));
                for k in (j + 1)..n {
                    let akj = a.at(k, j);
                    if akj != 0.0 {
                        add_col(b, k, j, alpha * akj);
                    }
                }
            }
        }
        // B·Uᵀ: result col j = Σ_{k≥j} B(:,k)·U(j,k); ascending j.
        (Uplo::Upper, Trans::Yes) => {
            for j in 0..n {
                scale_col(b, j, alpha * diag_val(a, j, unit));
                for k in (j + 1)..n {
                    let ajk = a.at(j, k);
                    if ajk != 0.0 {
                        add_col(b, k, j, alpha * ajk);
                    }
                }
            }
        }
        // B·Lᵀ: result col j = Σ_{k≤j} B(:,k)·L(j,k); descending j.
        (Uplo::Lower, Trans::Yes) => {
            for j in (0..n).rev() {
                scale_col(b, j, alpha * diag_val(a, j, unit));
                for k in 0..j {
                    let ajk = a.at(j, k);
                    if ajk != 0.0 {
                        add_col(b, k, j, alpha * ajk);
                    }
                }
            }
        }
    }
}

#[inline]
fn diag_val(a: &MatView<'_>, j: usize, unit: bool) -> f64 {
    if unit {
        1.0
    } else {
        a.at(j, j)
    }
}

#[inline]
fn scale_col(b: &mut MatViewMut<'_>, j: usize, factor: f64) {
    for v in b.col_mut(j) {
        *v *= factor;
    }
}

/// `B(:,dst) += factor · B(:,src)` for distinct columns of the same view.
#[inline]
fn add_col(b: &mut MatViewMut<'_>, src: usize, dst: usize, factor: f64) {
    debug_assert_ne!(src, dst);
    // Split so both columns can be borrowed at once without copying.
    let cut = src.max(dst);
    let (mut left, mut right) = b.rb_mut().split_at_col(cut);
    if src < dst {
        axpy(factor, left.col(src), right.col_mut(dst - cut));
    } else {
        axpy(factor, right.col(src - cut), left.col_mut(dst));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matrix::{max_abs_diff, Matrix};

    fn dense_triangle(a: &Matrix, uplo: Uplo, diag: Diag, order: usize) -> Matrix {
        Matrix::from_fn(order, order, |i, j| {
            let in_tri = match uplo {
                Uplo::Upper => i <= j,
                Uplo::Lower => i >= j,
            };
            if i == j && matches!(diag, Diag::Unit) {
                1.0
            } else if in_tri {
                a[(i, j)]
            } else {
                0.0
            }
        })
    }

    #[test]
    fn all_sixteen_variants_match_dense_gemm() {
        let m = 5;
        let n = 4;
        let b0 = ft_matrix::random::uniform(m, n, 10);
        for side in [Side::Left, Side::Right] {
            let order = if matches!(side, Side::Left) { m } else { n };
            let a = ft_matrix::random::uniform(order, order, 20);
            for uplo in [Uplo::Upper, Uplo::Lower] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        let t = dense_triangle(&a, uplo, diag, order);
                        let mut expect = Matrix::zeros(m, n);
                        match side {
                            Side::Left => crate::level3::gemm_ref(
                                trans,
                                Trans::No,
                                1.5,
                                &t.as_view(),
                                &b0.as_view(),
                                0.0,
                                &mut expect.as_view_mut(),
                            ),
                            Side::Right => crate::level3::gemm_ref(
                                Trans::No,
                                trans,
                                1.5,
                                &b0.as_view(),
                                &t.as_view(),
                                0.0,
                                &mut expect.as_view_mut(),
                            ),
                        }
                        let mut b = b0.clone();
                        trmm(
                            side,
                            uplo,
                            trans,
                            diag,
                            1.5,
                            &a.as_view(),
                            &mut b.as_view_mut(),
                        );
                        let err = max_abs_diff(&b, &expect);
                        assert!(
                            err < 1e-12,
                            "{side:?} {uplo:?} {trans:?} {diag:?}: err {err}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alpha_zero_clears() {
        let a = Matrix::identity(3);
        let mut b = ft_matrix::random::uniform(3, 3, 1);
        trmm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            0.0,
            &a.as_view(),
            &mut b.as_view_mut(),
        );
        assert_eq!(b, Matrix::zeros(3, 3));
    }

    #[test]
    fn identity_triangle_scales_only() {
        let a = Matrix::identity(4);
        let b0 = ft_matrix::random::uniform(4, 2, 2);
        let mut b = b0.clone();
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            2.0,
            &a.as_view(),
            &mut b.as_view_mut(),
        );
        let mut expect = b0;
        expect.scale(2.0);
        assert!(max_abs_diff(&b, &expect) < 1e-15);
    }
}
