//! Service observability: internal atomics for the per-instance snapshot,
//! mirrored into the process-wide `ft-trace` registry (`serve.*` counters
//! and gauges) so the service shows up next to `pool.*`/`ft.*` in traces
//! and counter dumps.

use crate::job::Priority;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Cached `serve.*` registry handles (one mutex-guarded lookup each,
/// then plain pointers — the registry idiom from `ft-trace`).
pub(crate) struct TraceHooks {
    pub submitted: &'static ft_trace::Counter,
    pub rejected: &'static ft_trace::Counter,
    pub completed: &'static ft_trace::Counter,
    pub failed: &'static ft_trace::Counter,
    pub retries: &'static ft_trace::Counter,
    pub deadline_missed: &'static ft_trace::Counter,
    pub canceled: &'static ft_trace::Counter,
    pub queue_depth: &'static ft_trace::Gauge,
    pub in_flight: &'static ft_trace::Gauge,
}

pub(crate) fn trace_hooks() -> &'static TraceHooks {
    static HOOKS: OnceLock<TraceHooks> = OnceLock::new();
    HOOKS.get_or_init(|| TraceHooks {
        submitted: ft_trace::counter("serve.submitted"),
        rejected: ft_trace::counter("serve.rejected"),
        completed: ft_trace::counter("serve.completed"),
        failed: ft_trace::counter("serve.failed"),
        retries: ft_trace::counter("serve.retries"),
        deadline_missed: ft_trace::counter("serve.deadline_missed"),
        canceled: ft_trace::counter("serve.canceled"),
        queue_depth: ft_trace::gauge("serve.queue_depth"),
        in_flight: ft_trace::gauge("serve.in_flight"),
    })
}

/// Log₂-bucketed latency histogram, microsecond domain. 40 buckets cover
/// 1 µs … ~18 minutes; percentile estimates return the upper edge of the
/// selected bucket (a ≤2× overestimate, which is plenty for a service
/// snapshot — the load generator keeps exact samples for reporting).
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 40;

    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket(us: u64) -> usize {
        // Bucket b holds latencies in (2^(b−1), 2^b] µs; bucket 0 holds 0–1.
        (64 - us.leading_zeros() as usize).min(Self::BUCKETS - 1)
    }

    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Upper-edge estimate of the `p`-th percentile (0 < p ≤ 100).
    fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                return if b == 0 { 1 } else { 1u64 << b };
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> PriorityLatency {
        let count = self.count.load(Ordering::Relaxed);
        PriorityLatency {
            count,
            mean_us: self
                .sum_us
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            p50_us: self.percentile_us(50.0),
            p95_us: self.percentile_us(95.0),
            p99_us: self.percentile_us(99.0),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Latency snapshot for one priority class (histogram-derived; percentile
/// fields are upper-edge estimates of the underlying log₂ buckets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PriorityLatency {
    /// Completed observations.
    pub count: u64,
    /// Arithmetic mean, µs.
    pub mean_us: u64,
    /// Median estimate, µs.
    pub p50_us: u64,
    /// 95th-percentile estimate, µs.
    pub p95_us: u64,
    /// 99th-percentile estimate, µs.
    pub p99_us: u64,
    /// Exact maximum, µs.
    pub max_us: u64,
}

/// Internal counter block (the snapshot source).
#[derive(Debug)]
pub(crate) struct ServiceCounters {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub retries: AtomicU64,
    pub deadline_missed: AtomicU64,
    pub canceled: AtomicU64,
    pub in_flight: AtomicU64,
    pub latency: [LatencyHistogram; 3],
}

impl ServiceCounters {
    pub fn new() -> ServiceCounters {
        ServiceCounters {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            canceled: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            latency: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
        }
    }
}

/// Point-in-time statistics of a running service.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs currently queued (admitted, not yet picked up).
    pub queue_depth: usize,
    /// Jobs currently executing (including retry backoff waits).
    pub in_flight: u64,
    /// Jobs admitted since start.
    pub submitted: u64,
    /// Submissions refused (`QueueFull`/`Timeout`/`Closed`).
    pub rejected: u64,
    /// Jobs that reached [`crate::JobStatus::Completed`].
    pub completed: u64,
    /// Jobs that reached [`crate::JobStatus::Failed`].
    pub failed: u64,
    /// Escalated re-runs executed (counts runs, not jobs).
    pub retries: u64,
    /// Jobs that expired before (or between) runs.
    pub deadline_missed: u64,
    /// Jobs canceled by an abort shutdown.
    pub canceled: u64,
    /// Per-priority completion latency, indexed by [`Priority::index`].
    pub latency: [PriorityLatency; 3],
}

impl ServiceStats {
    /// Jobs accounted as terminal (completed + failed + deadline-missed +
    /// canceled).
    pub fn terminal(&self) -> u64 {
        self.completed + self.failed + self.deadline_missed + self.canceled
    }

    /// Latency snapshot of one priority class.
    pub fn latency_of(&self, p: Priority) -> &PriorityLatency {
        &self.latency[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_us, 1000);
        // Upper-edge estimates: within 2× above the exact percentile and
        // never below it.
        assert!(s.p50_us >= 500 && s.p50_us <= 1024, "{s:?}");
        assert!(s.p95_us >= 950 && s.p95_us <= 2048, "{s:?}");
        assert!(s.p99_us >= 990 && s.p99_us <= 2048, "{s:?}");
        assert!(s.mean_us >= 400 && s.mean_us <= 600, "{s:?}");
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), PriorityLatency::default());
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(4), 3);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 39);
    }
}
