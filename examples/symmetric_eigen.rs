//! The paper's §VII generalization claim, demonstrated end-to-end: the
//! same ABFT + diskless-checkpoint + reverse-computation methodology
//! applied to a *second* two-sided factorization — symmetric tridiagonal
//! reduction — feeding a tridiagonal QL eigensolver, with soft errors
//! striking along the way.
//!
//! Run with: `cargo run --release --example symmetric_eigen`

use ft_hess_repro::blas::Trans;
use ft_hess_repro::hessenberg::tridiag::{ft_sytd2, FtTridiagConfig};
use ft_hess_repro::lapack::random_orthogonal;
use ft_hess_repro::lapack::sytrd::steqr_eigenvalues;
use ft_hess_repro::prelude::*;

fn main() {
    let n = 96;
    // Known spectrum, symmetric matrix A = P·diag(λ)·Pᵀ.
    let spectrum: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
    let d = Matrix::from_fn(n, n, |i, j| if i == j { spectrum[i] } else { 0.0 });
    let p = random_orthogonal(n, 4);
    let mut pd = Matrix::zeros(n, n);
    ft_hess_repro::blas::gemm(
        Trans::No,
        Trans::No,
        1.0,
        &p.as_view(),
        &d.as_view(),
        0.0,
        &mut pd.as_view_mut(),
    );
    let mut a = Matrix::zeros(n, n);
    ft_hess_repro::blas::gemm(
        Trans::No,
        Trans::Yes,
        1.0,
        &pd.as_view(),
        &p.as_view(),
        0.0,
        &mut a.as_view_mut(),
    );

    println!("FT symmetric eigensolver: N = {n}");

    // Three soft errors across the factorization — including the hardest
    // case, a symmetric-consistent *diagonal* corruption.
    let mut plan = FaultPlan::new(vec![
        ScheduledFault {
            iteration: 0,
            phase: Phase::IterationStart,
            fault: Fault::add(40, 60, 0.8),
        },
        ScheduledFault {
            iteration: 1,
            phase: Phase::IterationStart,
            fault: Fault::add(50, 50, -0.6),
        },
        ScheduledFault {
            iteration: 2,
            phase: Phase::IterationStart,
            fault: Fault::bitflip(80, 70, 48),
        },
    ]);

    let out = ft_sytd2(&a, &FtTridiagConfig::default(), &mut plan);
    println!(
        "injected {} faults; {} recovery episodes; {} group re-executions; {} Q fixes",
        out.report.injected.len(),
        out.report.recoveries.len(),
        out.report.redone_iterations,
        out.report.q_corrections.len()
    );

    let mut eigs = steqr_eigenvalues(&out.result.d, &out.result.e).expect("QL converges");
    let mut expected = spectrum.clone();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let worst = eigs
        .iter()
        .zip(&expected)
        .map(|(e, x)| (e - x).abs())
        .fold(0.0f64, f64::max);
    println!("worst eigenvalue error: {worst:.3e}");
    assert!(worst < 1e-10, "spectrum must survive all three faults");
    println!("OK: the symmetric eigenvalue pipeline survived three soft errors.");
}
