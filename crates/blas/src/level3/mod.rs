//! Level-3 BLAS: matrix–matrix operations.
//!
//! `gemm` is the performance-critical kernel (the paper's trailing-matrix
//! updates are almost entirely GEMM) and comes in three implementations
//! selected by [`GemmAlgo`]: a reference triple loop (test oracle), a
//! cache-blocked packed kernel, and a rayon-parallel variant that splits the
//! result into column panels (data-race free by construction — each task
//! owns a disjoint `MatViewMut`).

mod gemm;
mod syrk;
mod trmm;
mod trsm;

pub use gemm::{gemm, gemm_ref, gemm_with_algo, GemmAlgo};
pub use syrk::syrk;
pub use trmm::trmm;
pub use trsm::trsm;
