//! Property and concurrency tests for the bounded priority queue — the
//! invariants the whole service contract rests on:
//!
//! 1. **conservation**: no item is ever lost or duplicated, including
//!    under concurrent producers/consumers and a concurrent close;
//! 2. **ordering**: strict priority across lanes, FIFO within a lane;
//! 3. **backpressure**: `try_push` fails with `QueueFull` exactly when
//!    the queue holds `capacity` items, never before.

use ft_serve::{BoundedQueue, Priority, SubmitError};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn priority_strategy() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::High),
        Just(Priority::Normal),
        Just(Priority::Low),
    ]
}

proptest! {
    /// Any push sequence that fits in capacity pops back out in strict
    /// priority order, FIFO within each class, with nothing lost.
    #[test]
    fn pops_are_priority_ordered_and_complete(
        prios in proptest::collection::vec(priority_strategy(), 1..64),
    ) {
        let q = BoundedQueue::new(prios.len());
        for (i, &p) in prios.iter().enumerate() {
            q.try_push(p, (p, i)).unwrap();
        }
        q.close();
        let mut popped = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), prios.len());
        // Expected order: all High in push order, then Normal, then Low.
        let mut expected = Vec::new();
        for class in Priority::ALL {
            expected.extend(
                prios.iter().enumerate()
                    .filter(|&(_, &p)| p == class)
                    .map(|(i, &p)| (p, i)),
            );
        }
        prop_assert_eq!(popped, expected);
    }

    /// `QueueFull` fires exactly at capacity: the first `cap` pushes are
    /// admitted, the next is rejected, and freeing one slot admits
    /// exactly one more.
    #[test]
    fn queue_full_only_at_capacity(
        cap in 1usize..32,
        p in priority_strategy(),
    ) {
        let q = BoundedQueue::new(cap);
        for i in 0..cap {
            prop_assert!(q.try_push(p, i).is_ok(), "push {i} under capacity {cap}");
        }
        let (e, item) = q.try_push(p, cap).unwrap_err();
        prop_assert_eq!(e, SubmitError::QueueFull);
        prop_assert_eq!(item, cap);
        prop_assert_eq!(q.len(), cap);
        q.pop().unwrap();
        prop_assert!(q.try_push(p, cap).is_ok(), "freed slot admits one");
        let (e, _) = q.try_push(p, cap + 1).unwrap_err();
        prop_assert_eq!(e, SubmitError::QueueFull);
    }
}

/// Concurrent producers and consumers with a capacity smaller than the
/// item count: every produced item is consumed exactly once.
#[test]
fn concurrent_producers_consumers_conserve_items() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 3;
    const PER_PRODUCER: usize = 200;

    let q = Arc::new(BoundedQueue::new(8));
    let consumed: Arc<std::sync::Mutex<Vec<usize>>> = Arc::default();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let id = p * PER_PRODUCER + i;
                    let prio = Priority::ALL[id % 3];
                    q.push_timeout(prio, id, Duration::from_secs(30))
                        .map_err(|(e, _)| e)
                        .expect("bounded push with generous timeout");
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || {
                while let Some(id) = q.pop() {
                    consumed.lock().unwrap().push(id);
                }
            })
        })
        .collect();

    for t in producers {
        t.join().unwrap();
    }
    q.close(); // drain semantics: consumers exit once empty
    for t in consumers {
        t.join().unwrap();
    }

    let consumed = consumed.lock().unwrap();
    assert_eq!(consumed.len(), PRODUCERS * PER_PRODUCER, "no item lost");
    let unique: HashSet<_> = consumed.iter().collect();
    assert_eq!(unique.len(), consumed.len(), "no item duplicated");
    assert!(q.is_empty());
}

/// Producers racing an abort (`close_and_drain`): every item is accounted
/// exactly once — either rejected at the push (handed back to the
/// producer), drained by the closer, or popped by a consumer.
#[test]
fn concurrent_close_loses_nothing() {
    for round in 0..20 {
        let q = Arc::new(BoundedQueue::new(4));
        let rejected = Arc::new(AtomicUsize::new(0));
        let popped: Arc<std::sync::Mutex<Vec<usize>>> = Arc::default();

        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                let rejected = Arc::clone(&rejected);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let id = p * 50 + i;
                        match q.push_timeout(Priority::Normal, id, Duration::from_millis(2)) {
                            Ok(()) => {}
                            Err((_, _item)) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            let popped = Arc::clone(&popped);
            std::thread::spawn(move || {
                while let Some(id) = q.pop() {
                    popped.lock().unwrap().push(id);
                }
            })
        };
        // Let the race develop, then abort mid-stream.
        std::thread::sleep(Duration::from_millis(1 + round % 3));
        let drained = q.close_and_drain();
        for t in producers {
            t.join().unwrap();
        }
        consumer.join().unwrap();

        let popped = popped.lock().unwrap();
        let total = popped.len() + drained.len() + rejected.load(Ordering::Relaxed);
        assert_eq!(
            total, 150,
            "round {round}: accepted+drained+rejected must cover all"
        );
        let mut seen = HashSet::new();
        for id in popped.iter().chain(drained.iter()) {
            assert!(seen.insert(*id), "round {round}: item {id} surfaced twice");
        }
    }
}
