//! Deterministic workload generators.
//!
//! The paper evaluates on dense random matrices ("the Hessenberg reduction
//! algorithm is application agnostic"). Every generator here takes an
//! explicit seed so that experiments, tests and fault-injection campaigns
//! are bit-for-bit reproducible.

use crate::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random matrix with entries in `[-1, 1)`.
pub fn uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-1.0, 1.0);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(&mut rng))
}

/// Standard Gaussian random matrix (Box–Muller; avoids a `rand_distr`
/// dependency).
pub fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(f64::EPSILON, 1.0);
    let mut spare: Option<f64> = None;
    Matrix::from_fn(rows, cols, |_, _| {
        if let Some(v) = spare.take() {
            return v;
        }
        let u1: f64 = dist.sample(&mut rng);
        let u2: f64 = dist.sample(&mut rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        spare = Some(r * s);
        r * c
    })
}

/// Symmetric random matrix `(B + Bᵀ) / 2` with `B` uniform.
pub fn symmetric(n: usize, seed: u64) -> Matrix {
    let b = uniform(n, n, seed);
    Matrix::from_fn(n, n, |i, j| 0.5 * (b[(i, j)] + b[(j, i)]))
}

/// Diagonally dominant random matrix (well conditioned; every eigenvalue
/// bounded away from zero).
pub fn diag_dominant(n: usize, seed: u64) -> Matrix {
    let mut a = uniform(n, n, seed);
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)] = row_sum + 1.0;
    }
    a
}

/// Random upper Hessenberg matrix (already reduced; useful for testing the
/// eigensolver and for no-op reduction edge cases).
pub fn hessenberg(n: usize, seed: u64) -> Matrix {
    let mut a = uniform(n, n, seed);
    for j in 0..n {
        for i in (j + 2)..n {
            a[(i, j)] = 0.0;
        }
    }
    a
}

/// A matrix with known real eigenvalues: `P D P⁻¹` is expensive without a
/// solver, so instead we return an upper triangular matrix with the given
/// diagonal plus random strictly-upper content. Its eigenvalues are exactly
/// `diag`.
pub fn triangular_with_eigenvalues(diag: &[f64], seed: u64) -> Matrix {
    let n = diag.len();
    let mut a = uniform(n, n, seed);
    for j in 0..n {
        for i in j..n {
            a[(i, j)] = if i == j { diag[i] } else { 0.0 };
        }
    }
    a
}

/// Scales entries to a given magnitude (useful to exercise the detection
/// threshold at different data scales).
pub fn uniform_scaled(rows: usize, cols: usize, scale: f64, seed: u64) -> Matrix {
    let mut a = uniform(rows, cols, seed);
    a.scale(scale);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = uniform(16, 16, 42);
        let b = uniform(16, 16, 42);
        let c = uniform(16, 16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_range() {
        let a = uniform(50, 50, 7);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let a = gaussian(100, 100, 11);
        let n = (a.rows() * a.cols()) as f64;
        let mean: f64 = a.as_slice().iter().sum::<f64>() / n;
        let var: f64 = a
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn symmetric_is_symmetric() {
        let a = symmetric(20, 3);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn hessenberg_is_hessenberg() {
        assert!(hessenberg(30, 5).is_upper_hessenberg());
    }

    #[test]
    fn triangular_eigenvalues_on_diagonal() {
        let d = [3.0, -1.0, 0.5];
        let t = triangular_with_eigenvalues(&d, 1);
        assert!(t.is_upper_triangular_tol(0.0));
        for (i, &v) in d.iter().enumerate() {
            assert_eq!(t[(i, i)], v);
        }
    }

    #[test]
    fn diag_dominant_dominates() {
        let a = diag_dominant(25, 9);
        for i in 0..25 {
            let off: f64 = (0..25).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)].abs() > off);
        }
    }
}
