//! FTC010 fixture: reads a knob through the sanctioned helpers that the
//! `KNOBS` registry does not declare.

pub fn smoke() -> bool {
    env_knob::flag("FT_FIXTURE_PHANTOM_KNOB")
}
