//! BLAS argument selector enums.

/// Whether an operand participates transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// The opposite selector.
    pub fn flip(self) -> Trans {
        match self {
            Trans::No => Trans::Yes,
            Trans::Yes => Trans::No,
        }
    }

    /// `true` for [`Trans::Yes`].
    pub fn is_trans(self) -> bool {
        matches!(self, Trans::Yes)
    }
}

/// Which triangle of a triangular/symmetric operand is referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Uplo {
    /// The upper triangle.
    Upper,
    /// The lower triangle.
    Lower,
}

/// Whether a triangular operand has an implicit unit diagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Diag {
    /// Implicit unit diagonal (stored values ignored).
    Unit,
    /// Diagonal taken from storage.
    NonUnit,
}

/// Whether a triangular operand multiplies from the left or the right.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Multiply from the left.
    Left,
    /// Multiply from the right.
    Right,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trans_flip() {
        assert_eq!(Trans::No.flip(), Trans::Yes);
        assert_eq!(Trans::Yes.flip(), Trans::No);
        assert!(Trans::Yes.is_trans());
        assert!(!Trans::No.is_trans());
    }
}
