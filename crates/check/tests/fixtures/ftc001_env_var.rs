//! Fixture: exactly one FTC001 violation (direct env read) on line 5.

/// Reads a knob without going through `ft_trace::env_knob`.
pub fn backend() -> Option<String> {
    std::env::var("FT_BLAS_BACKEND").ok()
}
