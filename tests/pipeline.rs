//! End-to-end integration tests spanning every crate in the workspace:
//! matrix generation → fault injection → fault-tolerant hybrid reduction
//! on the simulated platform → eigenvalue extraction → verification.

use ft_hess_repro::blas::Trans;
use ft_hess_repro::hessenberg::verify::ResidualReport;
use ft_hess_repro::lapack::hseqr::sort_eigenvalues;
use ft_hess_repro::lapack::random_orthogonal;
use ft_hess_repro::prelude::*;

fn ctx() -> HybridCtx {
    HybridCtx::new(CostModel::k40c_sandy_bridge(), ExecMode::Full, 2)
}

/// Symmetric matrix with a prescribed spectrum (condition-1 eigenvalues).
fn with_spectrum(spectrum: &[f64], seed: u64) -> Matrix {
    let n = spectrum.len();
    let d = Matrix::from_fn(n, n, |i, j| if i == j { spectrum[i] } else { 0.0 });
    let p = random_orthogonal(n, seed);
    let mut pd = Matrix::zeros(n, n);
    ft_hess_repro::blas::gemm(
        Trans::No,
        Trans::No,
        1.0,
        &p.as_view(),
        &d.as_view(),
        0.0,
        &mut pd.as_view_mut(),
    );
    let mut a = Matrix::zeros(n, n);
    ft_hess_repro::blas::gemm(
        Trans::No,
        Trans::Yes,
        1.0,
        &pd.as_view(),
        &p.as_view(),
        0.0,
        &mut a.as_view_mut(),
    );
    a
}

#[test]
fn eigenvalues_survive_soft_errors() {
    let n = 64;
    let spectrum: Vec<f64> = (0..n).map(|i| (i as f64) - 32.0).collect();
    let a = with_spectrum(&spectrum, 3);

    let mut plan = FaultPlan::one(1, Fault::add(40, 50, 0.6));
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx(), &mut plan);
    assert!(!out.report.recoveries.is_empty(), "fault must be caught");

    let h = out.result.unwrap().h();
    let mut eigs = ft_hess_repro::lapack::eigenvalues_hessenberg(&h).unwrap();
    sort_eigenvalues(&mut eigs);
    let mut expected = spectrum.clone();
    expected.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for (e, x) in eigs.iter().zip(&expected) {
        assert!(e.im.abs() < 1e-8, "spurious complex eigenvalue {e:?}");
        assert!((e.re - x).abs() < 1e-8, "eigenvalue {} vs {x}", e.re);
    }
}

#[test]
fn ft_result_bitwise_close_to_baseline_when_clean() {
    // With no faults the FT algorithm performs the same arithmetic as the
    // baseline on the real part — results should agree to roundoff.
    let n = 80;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 17);
    let base = gehrd_hybrid(
        &a,
        &HybridConfig { nb: 16 },
        &mut ctx(),
        &mut FaultPlan::none(),
    )
    .result
    .unwrap();
    let ft = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(16),
        &mut ctx(),
        &mut FaultPlan::none(),
    )
    .result
    .unwrap();
    let diff = ft_hess_repro::matrix::max_abs_diff(&base.packed, &ft.packed);
    assert!(diff < 1e-12, "clean FT vs baseline packed diff = {diff}");
}

#[test]
fn faulty_baseline_vs_protected_ft() {
    // The contrast the paper motivates: the same fault destroys the
    // baseline's result but leaves the FT result intact.
    let n = 96;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 23);
    let fault = Fault::add(60, 70, 1.0);

    let dirty = gehrd_hybrid(
        &a,
        &HybridConfig { nb: 32 },
        &mut ctx(),
        &mut FaultPlan::one(1, fault),
    )
    .result
    .unwrap();
    let r_dirty = ResidualReport::compute(&a, &dirty.q(), &dirty.h());
    assert!(
        r_dirty.factorization > 1e-10,
        "baseline must be damaged: {r_dirty:?}"
    );

    let ft = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(32),
        &mut ctx(),
        &mut FaultPlan::one(1, fault),
    )
    .result
    .unwrap();
    let r_ft = ResidualReport::compute(&a, &ft.q(), &ft.h());
    assert!(r_ft.acceptable(1e-12), "FT must survive: {r_ft:?}");
}

#[test]
fn multiple_faults_across_iterations() {
    // Subsequent errors after a recovery must also be caught (§I: "ready
    // to detect and correct subsequent soft errors").
    let n = 96;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 29);
    let mut plan = FaultPlan::new(vec![
        ScheduledFault {
            iteration: 0,
            phase: Phase::IterationStart,
            fault: Fault::add(50, 60, 0.4),
        },
        ScheduledFault {
            iteration: 1,
            phase: Phase::IterationStart,
            fault: Fault::add(70, 80, -0.7),
        },
        ScheduledFault {
            iteration: 2,
            phase: Phase::IterationStart,
            fault: Fault::add(85, 90, 0.2),
        },
    ]);
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(32), &mut ctx(), &mut plan);
    assert!(
        out.report.recoveries.len() >= 3,
        "three separate episodes: {:?}",
        out.report.recoveries.len()
    );
    let f = out.result.unwrap();
    let r = ResidualReport::compute(&a, &f.q(), &f.h());
    assert!(r.acceptable(1e-12), "{r:?}");
}

#[test]
fn bitflip_faults_various_bits() {
    // Mantissa and sign flips of very different magnitudes all get fixed.
    let n = 64;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 31);
    for &bit in &[20u8, 40, 51, 63] {
        let mut plan = FaultPlan::one(1, Fault::bitflip(40, 45, bit));
        let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx(), &mut plan);
        let f = out.result.unwrap();
        let r = ResidualReport::compute(&a, &f.q(), &f.h());
        // Low mantissa bits may fall below the detection threshold — but
        // then they are also harmless; either way the result must be good.
        assert!(r.acceptable(1e-11), "bit {bit}: {r:?}");
    }
}

#[test]
fn moderate_exponent_bitflip_fully_recovered() {
    let n = 64;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 37);
    // Bit 54 scales the element by 2⁴: a large-but-finite corruption that
    // reverse computation restores to full precision.
    let mut plan = FaultPlan::one(1, Fault::bitflip(40, 50, 54));
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx(), &mut plan);
    assert!(!out.report.recoveries.is_empty());
    assert!(!out.report.any_unresolved(), "{:?}", out.report.recoveries);
    let f = out.result.unwrap();
    let r = ResidualReport::compute(&a, &f.q(), &f.h());
    assert!(r.acceptable(1e-11), "{r:?}");
}

#[test]
fn overflow_scale_bitflip_detected_and_flagged() {
    // Flipping the top exponent bit turns 0.34 into ~6e307: the forward
    // updates overflow (Inf − Inf = NaN), so no single-panel-checkpoint
    // scheme — the paper's included — can restore the data. The required
    // behaviour is *honesty*: the detector must fire (NaN-safe compare)
    // and the report must flag the episode as unresolved rather than
    // silently returning garbage.
    let n = 64;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 37);
    let mut plan = FaultPlan::one(1, Fault::bitflip(40, 50, 62));
    let out = ft_gehrd_hybrid(&a, &FtConfig::with_nb(16), &mut ctx(), &mut plan);
    assert!(!out.report.recoveries.is_empty(), "detector must fire");
    assert!(
        out.report.any_unresolved(),
        "an unrecoverable corruption must be flagged, not hidden"
    );
}

#[test]
fn simulated_time_deterministic() {
    let n = 64;
    let a = ft_hess_repro::matrix::random::uniform(n, n, 41);
    let t1 = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(16),
        &mut ctx(),
        &mut FaultPlan::none(),
    )
    .report
    .sim_seconds;
    let t2 = ft_gehrd_hybrid(
        &a,
        &FtConfig::with_nb(16),
        &mut ctx(),
        &mut FaultPlan::none(),
    )
    .report
    .sim_seconds;
    assert_eq!(t1, t2, "simulation must be deterministic");
}
