//! Fixture: exactly one FTC006 violation (typo'd counter name) on line 6.

/// Increments a counter whose name is not in the declared registry —
/// the typo would silently report zero forever.
pub fn record_retry() {
    ft_trace::counter("serve.retrys").incr();
}
